package sequence

import (
	"reflect"
	"testing"
)

// The paper's worked example in section 3.2.1: starting from D_5^BR, the
// first transformation produces <0102010301020104323132303231323> and the
// final result is D_5^p-BR = <0102010310121014323132302321232>.
func TestPermutedBRWorkedExample(t *testing.T) {
	want, err := ParseSeq("0102010310121014323132302321232")
	if err != nil {
		t.Fatal(err)
	}
	got := PermutedBR(5)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("D_5^p-BR = %s, want %s", got.String(), want.String())
	}
}

// For e=3 the single transformation swaps links 0 and 1 in the second
// 2-subsequence: <0102010> -> <0102101>, which coincides with the paper's
// minimum-α sequence for e=3.
func TestPermutedBRSmallCases(t *testing.T) {
	if got := PermutedBR(3).String(); got != "<0102101>" {
		t.Errorf("D_3^p-BR = %s, want <0102101>", got)
	}
	// e < 3: no transformations, p-BR == BR.
	for e := 1; e <= 2; e++ {
		if !reflect.DeepEqual(PermutedBR(e), BR(e)) {
			t.Errorf("e=%d: p-BR should equal BR", e)
		}
	}
}

func TestPermutedBRIsESequence(t *testing.T) {
	for _, r := range []PBRRounding{PBRFloorDiv, PBRCeilDiv, PBRRoundDiv} {
		for e := 1; e <= 16; e++ {
			s := PermutedBRWithRounding(e, r)
			if err := ValidateESequence(s, e); err != nil {
				t.Errorf("rounding %d, e=%d: %v", r, e, err)
			}
		}
	}
}

// Calibration against the paper's Table 1. The printed α values for
// e = 7..14 are 23, 43, 67, 131, 289, 577, 776, 1543. Our floor-division
// convention reproduces the paper's worked D_5^p-BR exactly and yields the α
// values asserted below: within 1 of the paper for e ∈ {7,8,9,10,14}, equal
// for e = 13, and *smaller* (better-balanced) for e ∈ {11,12}. The ratio to
// the lower bound stays in the same 1.2–1.4 band the paper reports,
// consistent with the 1.25 asymptote of Theorem 3. EXPERIMENTS.md discusses
// the deltas.
func TestPermutedBRTable1(t *testing.T) {
	locked := map[int]int{
		7:  24,
		8:  44,
		9:  68,
		10: 132,
		11: 232,
		12: 456,
		13: 776,
		14: 1544,
	}
	paper := map[int]int{
		7: 23, 8: 43, 9: 67, 10: 131, 11: 289, 12: 577, 13: 776, 14: 1543,
	}
	for e := 7; e <= 14; e++ {
		got := PermutedBRAlpha(e)
		if got != locked[e] {
			t.Errorf("α(D_%d^p-BR) = %d, locked value %d", e, got, locked[e])
		}
		if got > paper[e]+1 && got > paper[e] {
			t.Errorf("α(D_%d^p-BR) = %d exceeds paper value %d by more than 1", e, got, paper[e])
		}
		lb := LowerBoundAlpha(e)
		ratio := float64(got) / float64(lb)
		if ratio < 1.0 || ratio > 1.45 {
			t.Errorf("e=%d: α/LB = %.3f outside the paper's band", e, ratio)
		}
	}
}

// α(p-BR) must always be dramatically smaller than α(BR) = 2^(e-1) and at
// least the lower bound.
func TestPermutedBRAlphaBounds(t *testing.T) {
	for e := 4; e <= 16; e++ {
		a := PermutedBRAlpha(e)
		if a < LowerBoundAlpha(e) {
			t.Errorf("e=%d: α = %d below lower bound %d", e, a, LowerBoundAlpha(e))
		}
		if a >= BRAlpha(e) {
			t.Errorf("e=%d: α = %d not better than BR's %d", e, a, BRAlpha(e))
		}
		// Theorem 2's analytic bound (derived for e-1 a power of two)
		// should hold with a little slack for general e.
		if bound := PBRUpperBoundAlpha(e); float64(a) > bound*1.10 {
			t.Errorf("e=%d: α = %d exceeds theorem-2 bound %.1f by >10%%", e, a, bound)
		}
	}
}

// The permutation cascade only relabels links, so the multiset of *positions*
// is untouched: p-BR and BR have the same length and the same total count.
func TestPermutedBRPreservesLength(t *testing.T) {
	for e := 1; e <= 14; e++ {
		if len(PermutedBR(e)) != SeqLen(e) {
			t.Errorf("e=%d: wrong length", e)
		}
	}
}

// The asymptotic claim of Theorem 3: α(p-BR)/LB approaches 1.25 for
// e = 2^S + 1. Verified at the power-of-two-plus-one points where the
// theorem's derivation is exact.
func TestPermutedBRAsymptoticRatio(t *testing.T) {
	for _, e := range []int{9, 17} {
		a := PermutedBRAlpha(e)
		lb := LowerBoundAlpha(e)
		ratio := float64(a) / float64(lb)
		if ratio > 1.30 {
			t.Errorf("e=%d: ratio %.3f, expected near 1.25", e, ratio)
		}
	}
}

func TestPBRHalfRanges(t *testing.T) {
	// e=17 (e-1=16): spans 16, 8, 4, 2 under every convention.
	for _, r := range []PBRRounding{PBRFloorDiv, PBRCeilDiv, PBRRoundDiv} {
		got := pbrHalfRanges(17, r)
		if !reflect.DeepEqual(got, []int{16, 8, 4, 2}) {
			t.Errorf("rounding %d: halfRanges(17) = %v", r, got)
		}
	}
	// e=7 (e-1=6): floor gives 6,3; ceil gives 6,3,2.
	if got := pbrHalfRanges(7, PBRFloorDiv); !reflect.DeepEqual(got, []int{6, 3}) {
		t.Errorf("floor halfRanges(7) = %v", got)
	}
	if got := pbrHalfRanges(7, PBRCeilDiv); !reflect.DeepEqual(got, []int{6, 3, 2}) {
		t.Errorf("ceil halfRanges(7) = %v", got)
	}
	// e=3: single transposition of 0,1.
	if got := pbrHalfRanges(3, PBRFloorDiv); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("halfRanges(3) = %v", got)
	}
	// e=2: no transformations possible ((e-k-1)-subsequences need dim >= 1).
	if got := pbrHalfRanges(2, PBRFloorDiv); len(got) != 0 {
		t.Errorf("halfRanges(2) = %v, want empty", got)
	}
}

// The first transformation alone must reproduce the intermediate sequence
// printed in the paper: <0102010301020104323132303231323>.
func TestPermutedBRFirstTransformationIntermediate(t *testing.T) {
	e := 5
	sigmas := pbrSigmas(e, PBRFloorDiv)
	got := applyPBRTransforms(BR(e), e, sigmas[:1])
	want, err := ParseSeq("0102010301020104323132303231323")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("after transformation 0: %s, want %s", got.String(), want.String())
	}
}
