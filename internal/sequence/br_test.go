package sequence

import (
	"reflect"
	"testing"

	"repro/internal/hypercube"
)

func TestBRPaperExamples(t *testing.T) {
	// Paper section 2.3.1: D_1^BR = <0> and D_4^BR = <010201030102010>.
	if got := BR(1).String(); got != "<0>" {
		t.Errorf("BR(1) = %s", got)
	}
	if got := BR(4).String(); got != "<010201030102010>" {
		t.Errorf("BR(4) = %s", got)
	}
}

func TestBRRecursiveStructure(t *testing.T) {
	// D_i = <D_{i-1}, i-1, D_{i-1}>
	for e := 2; e <= 12; e++ {
		prev, cur := BR(e-1), BR(e)
		if len(cur) != 2*len(prev)+1 {
			t.Fatalf("e=%d: length %d", e, len(cur))
		}
		if cur[len(prev)] != e-1 {
			t.Errorf("e=%d: separator = %d, want %d", e, cur[len(prev)], e-1)
		}
		if !reflect.DeepEqual(cur[:len(prev)], prev) {
			t.Errorf("e=%d: first half differs from D_{e-1}", e)
		}
		if !reflect.DeepEqual(cur[len(prev)+1:], prev) {
			t.Errorf("e=%d: second half differs from D_{e-1}", e)
		}
	}
}

func TestBRIsESequence(t *testing.T) {
	for e := 1; e <= 16; e++ {
		if err := ValidateESequence(BR(e), e); err != nil {
			t.Errorf("BR(%d): %v", e, err)
		}
	}
}

func TestBRMatchesGrayPath(t *testing.T) {
	for e := 1; e <= 12; e++ {
		gray := Seq(hypercube.New(e).GrayPathLinks())
		if !reflect.DeepEqual(BR(e), gray) {
			t.Errorf("BR(%d) differs from Gray-code path links", e)
		}
	}
}

func TestBRAlphaClosedForm(t *testing.T) {
	for e := 1; e <= 16; e++ {
		if got, want := BR(e).Alpha(), BRAlpha(e); got != want {
			t.Errorf("α(BR(%d)) = %d, closed form %d", e, got, want)
		}
	}
	if BRAlpha(0) != 0 {
		t.Error("BRAlpha(0) != 0")
	}
}

func TestBRCountClosedForm(t *testing.T) {
	for e := 1; e <= 12; e++ {
		counts, err := BR(e).Counts(e)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < e; i++ {
			if counts[i] != BRCount(e, i) {
				t.Errorf("e=%d link %d: count %d, closed form %d", e, i, counts[i], BRCount(e, i))
			}
		}
	}
	if BRCount(4, -1) != 0 || BRCount(4, 4) != 0 {
		t.Error("BRCount out of range should be 0")
	}
}

// The paper notes that any window of Q consecutive elements of D_e^BR has at
// least floor(Q/2) elements equal to 0, which is why pipelining BR cannot
// beat a factor of 2 (section 2.4).
func TestBRWindowHalfZeros(t *testing.T) {
	for e := 2; e <= 10; e++ {
		s := BR(e)
		for _, q := range []int{2, 3, 4, 7} {
			if q > len(s) {
				continue
			}
			for i := 0; i+q <= len(s); i++ {
				zeros := 0
				for _, l := range s[i : i+q] {
					if l == 0 {
						zeros++
					}
				}
				if zeros < q/2 {
					t.Fatalf("e=%d window [%d,%d) has only %d zeros, want >= %d", e, i, i+q, zeros, q/2)
				}
			}
		}
	}
}

func TestBRSubsequenceOffsets(t *testing.T) {
	// Level-0 blocks of D_5: two 4-subsequences at 0 and 16.
	got := brSubsequenceOffsets(5, 0)
	if !reflect.DeepEqual(got, []int{0, 16}) {
		t.Errorf("offsets(5,0) = %v", got)
	}
	// Level-1: four 3-subsequences at 0,8,16,24.
	got = brSubsequenceOffsets(5, 1)
	if !reflect.DeepEqual(got, []int{0, 8, 16, 24}) {
		t.Errorf("offsets(5,1) = %v", got)
	}
	// Each level-k block of BR(e) is itself a BR (e-k-1)-sequence.
	for e := 3; e <= 8; e++ {
		s := BR(e)
		for k := 0; k < e-1; k++ {
			blockLen := SeqLen(e - k - 1)
			for _, off := range brSubsequenceOffsets(e, k) {
				if !reflect.DeepEqual(s[off:off+blockLen], BR(e-k-1)) {
					t.Fatalf("e=%d k=%d off=%d: block != BR(%d)", e, k, off, e-k-1)
				}
			}
		}
	}
}

func TestBRPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BR(-1) did not panic")
		}
	}()
	BR(-1)
}
