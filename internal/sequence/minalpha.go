package sequence

import "fmt"

// The minimum-α ordering (paper section 3.1) uses, for each exchange phase,
// a Hamiltonian-path sequence with the smallest possible α. Finding such a
// sequence is NP-hard; the paper could compute them only for e < 7. The
// printed sequences are embedded below; our tests verify that each is a valid
// e-sequence and that its α equals both the paper's claim and the lower bound
// ceil((2^e-1)/e) — all five turn out to be exactly optimal.

// MinAlphaMaxDim is the largest e for which a minimum-α sequence is known.
const MinAlphaMaxDim = 6

// paperMinAlpha holds the D_e^min-α sequences exactly as printed in the
// paper, keyed by e. Each has been machine-validated.
var paperMinAlpha = map[int]string{
	2: "010",
	3: "0102101",
	4: "010203212303121",
	5: "0102010301021412321230323414323",
	6: "010201030102010401021312521312" +
		"4323132343" +
		"50542453542414345254345",
}

// MinAlpha returns D_e^min-α for e in [1, MinAlphaMaxDim]. e = 1 has the
// single sequence <0>. For larger e the optimal sequence is unknown and an
// error is returned; ordering families fall back to permuted-BR there, the
// same substitution the paper makes (footnote in section 4).
func MinAlpha(e int) (Seq, error) {
	checkDim(e)
	if e == 1 {
		return Seq{0}, nil
	}
	text, ok := paperMinAlpha[e]
	if !ok {
		return nil, fmt.Errorf("sequence: minimum-α sequence unknown for e=%d (NP-hard; paper solved only e < 7)", e)
	}
	s, err := ParseSeq(text)
	if err != nil {
		return nil, fmt.Errorf("sequence: embedded min-α data for e=%d corrupt: %w", e, err)
	}
	return s, nil
}

// MinAlphaValue returns α(D_e^min-α) for known e: 2, 3, 4, 7, 11 for
// e = 2..6 (each equal to LowerBoundAlpha(e)), and 1 for e = 1.
func MinAlphaValue(e int) (int, error) {
	s, err := MinAlpha(e)
	if err != nil {
		return 0, err
	}
	return s.Alpha(), nil
}

// FindLowAlphaSequence searches for an e-sequence whose α does not exceed
// maxAlpha, using depth-first search over Hamiltonian paths of the e-cube
// with two prunings: a branch is cut when a link's usage would exceed
// maxAlpha, and candidate links are tried least-used first so balanced paths
// are found early. maxSteps bounds the number of search-tree nodes expanded
// (0 means a default budget); the search is deterministic.
//
// It returns the sequence and true on success, or nil and false if the
// budget is exhausted or no such path exists.
func FindLowAlphaSequence(e, maxAlpha, maxSteps int) (Seq, bool) {
	checkDim(e)
	if e == 0 {
		return Seq{}, true
	}
	if maxAlpha < LowerBoundAlpha(e) {
		return nil, false
	}
	if maxSteps <= 0 {
		maxSteps = 2_000_000
	}
	n := 1 << uint(e)
	st := &lowAlphaSearch{
		e:        e,
		maxAlpha: maxAlpha,
		budget:   maxSteps,
		visited:  make([]bool, n),
		counts:   make([]int, e),
		path:     make(Seq, 0, n-1),
	}
	st.visited[0] = true
	if st.dfs(0, n-1) {
		return st.path, true
	}
	return nil, false
}

type lowAlphaSearch struct {
	e        int
	maxAlpha int
	budget   int
	visited  []bool
	counts   []int
	path     Seq
}

// dfs extends the path from node cur with remaining nodes still to visit.
func (st *lowAlphaSearch) dfs(cur, remaining int) bool {
	if remaining == 0 {
		return true
	}
	if st.budget <= 0 {
		return false
	}
	st.budget--

	// Try links ordered by current usage (ascending) to balance counts early.
	order := make([]int, 0, st.e)
	for l := 0; l < st.e; l++ {
		order = append(order, l)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && st.counts[order[j]] < st.counts[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	for _, l := range order {
		if st.counts[l] >= st.maxAlpha {
			continue
		}
		next := cur ^ (1 << uint(l))
		if st.visited[next] {
			continue
		}
		st.visited[next] = true
		st.counts[l]++
		st.path = append(st.path, l)
		if st.dfs(next, remaining-1) {
			return true
		}
		st.path = st.path[:len(st.path)-1]
		st.counts[l]--
		st.visited[next] = false
	}
	return false
}
