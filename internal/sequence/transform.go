package sequence

import "fmt"

// Property 1 of the paper: link permutations applied to subsequences that are
// themselves Hamiltonian paths of subcubes preserve the Hamiltonian property
// of the whole sequence. These helpers implement the transformations and the
// associated validity checks. ApplySubcubePermutation additionally verifies
// the *result*, because the property as printed requires the permutation to
// map the subsequence's dimension set onto itself (which every use in the
// paper satisfies); verifying the output makes misuse impossible.

// Permutation is a bijection on link identifiers represented as a lookup
// slice: p[i] is the image of link i.
type Permutation []int

// IdentityPermutation returns the identity on [0, n).
func IdentityPermutation(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Transposition returns the permutation on [0, n) that swaps a and b.
func Transposition(n, a, b int) Permutation {
	p := IdentityPermutation(n)
	p[a], p[b] = b, a
	return p
}

// Compose returns p∘q: the permutation that applies q first, then p.
func Compose(p, q Permutation) Permutation {
	out := make(Permutation, len(p))
	for i := range out {
		out[i] = p[q[i]]
	}
	return out
}

// Inverse returns the inverse permutation.
func (p Permutation) Inverse() Permutation {
	out := make(Permutation, len(p))
	for i, v := range p {
		out[v] = i
	}
	return out
}

// Valid reports whether p is a bijection on [0, len(p)).
func (p Permutation) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// ApplyPermutation returns a copy of s with every link relabelled through p.
// Per Property 1, if s is an e-sequence and p is a valid permutation of
// [0, e-1] then the result is an e-sequence too.
func ApplyPermutation(s Seq, p Permutation) (Seq, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("sequence: invalid permutation %v", p)
	}
	out := make(Seq, len(s))
	for i, l := range s {
		if l < 0 || l >= len(p) {
			return nil, fmt.Errorf("sequence: element %d is link %d, outside permutation domain [0,%d]", i, l, len(p)-1)
		}
		out[i] = p[l]
	}
	return out, nil
}

// IsSubcubePath reports whether sub is a Hamiltonian path of some subcube:
// it uses j distinct links and visits 2^j distinct nodes of the subcube they
// span. This is the precondition of Property 1.
func IsSubcubePath(sub Seq) bool {
	dims := make(map[int]int) // link -> local bit index
	for _, l := range sub {
		if l < 0 {
			return false
		}
		if _, ok := dims[l]; !ok {
			dims[l] = len(dims)
		}
	}
	j := len(dims)
	if j > 26 || len(sub) != SeqLen(j) {
		return false
	}
	visited := make([]bool, 1<<uint(j))
	visited[0] = true
	cur := 0
	for _, l := range sub {
		cur ^= 1 << uint(dims[l])
		if visited[cur] {
			return false
		}
		visited[cur] = true
	}
	return true
}

// ApplySubcubePermutation applies permutation p to the subsequence
// s[from:to] of an e-sequence s and returns the transformed copy. It
// enforces the Property-1 preconditions (the range is a subcube path and p
// is a valid permutation of [0, e-1]) and verifies that the result is still
// an e-sequence, returning an error otherwise.
func ApplySubcubePermutation(s Seq, e, from, to int, p Permutation) (Seq, error) {
	if err := ValidateESequence(s, e); err != nil {
		return nil, fmt.Errorf("sequence: input is not an e-sequence: %w", err)
	}
	if from < 0 || to > len(s) || from >= to {
		return nil, fmt.Errorf("sequence: bad range [%d,%d) for length %d", from, to, len(s))
	}
	if !IsSubcubePath(s[from:to]) {
		return nil, fmt.Errorf("sequence: range [%d,%d) is not a Hamiltonian path of a subcube", from, to)
	}
	if len(p) != e || !p.Valid() {
		return nil, fmt.Errorf("sequence: permutation must be a bijection on [0,%d)", e)
	}
	out := s.Clone()
	for i := from; i < to; i++ {
		out[i] = p[out[i]]
	}
	if err := ValidateESequence(out, e); err != nil {
		return nil, fmt.Errorf("sequence: permutation broke the Hamiltonian property (it must map the subsequence's dimensions onto themselves): %w", err)
	}
	return out, nil
}
