package sequence

import (
	"math/rand"
	"testing"
)

// Fuzz targets for the Property-1 transformation machinery: permutations
// applied to e-sequences must be invertible (round-trip) and must preserve
// the Hamiltonian-path property; the validity checkers must never panic on
// arbitrary input. CI runs these as a short -fuzztime smoke on every push.

// FuzzApplyPermutationRoundTrip: for any dimension and any seeded random
// permutation p of [0,e), ApplyPermutation is defined, preserves the
// e-sequence property (Property 1 with the whole sequence as the subcube
// path), and composes with its inverse to the identity.
func FuzzApplyPermutationRoundTrip(f *testing.F) {
	f.Add(uint8(3), int64(1))
	f.Add(uint8(5), int64(7))
	f.Add(uint8(8), int64(42))
	f.Fuzz(func(t *testing.T, eRaw uint8, seed int64) {
		e := 2 + int(eRaw%7) // dimensions 2..8
		s := BR(e)
		rng := rand.New(rand.NewSource(seed))
		p := Permutation(rng.Perm(e))
		if !p.Valid() {
			t.Fatalf("rng.Perm produced invalid permutation %v", p)
		}
		out, err := ApplyPermutation(s, p)
		if err != nil {
			t.Fatalf("ApplyPermutation(BR(%d), %v): %v", e, p, err)
		}
		if !IsESequence(out, e) {
			t.Fatalf("permuted BR(%d) under %v is not an e-sequence", e, p)
		}
		back, err := ApplyPermutation(out, p.Inverse())
		if err != nil {
			t.Fatalf("inverse application: %v", err)
		}
		if len(back) != len(s) {
			t.Fatalf("round trip changed length: %d vs %d", len(back), len(s))
		}
		for i := range s {
			if back[i] != s[i] {
				t.Fatalf("round trip diverges at %d: %d vs %d", i, back[i], s[i])
			}
		}
		// Compose(p, p⁻¹) is the identity.
		id := Compose(p, p.Inverse())
		for i, v := range id {
			if v != i {
				t.Fatalf("Compose(p, p.Inverse())[%d] = %d", i, v)
			}
		}
	})
}

// FuzzSubcubePermutation: whatever range and permutation the fuzzer picks,
// ApplySubcubePermutation either rejects the input or returns a valid
// e-sequence — and never mutates its input (clone semantics).
func FuzzSubcubePermutation(f *testing.F) {
	f.Add(uint8(4), int64(3), uint16(0), uint16(7))
	f.Add(uint8(6), int64(9), uint16(8), uint16(3))
	f.Fuzz(func(t *testing.T, eRaw uint8, seed int64, fromRaw, lenRaw uint16) {
		e := 3 + int(eRaw%6) // 3..8
		s := PermutedBR(e)
		orig := s.Clone()
		from := int(fromRaw) % len(s)
		to := from + 1 + int(lenRaw)%(len(s)-from)
		rng := rand.New(rand.NewSource(seed))
		p := Permutation(rng.Perm(e))
		out, err := ApplySubcubePermutation(s, e, from, to, p)
		if err == nil {
			if err := ValidateESequence(out, e); err != nil {
				t.Fatalf("accepted result is not an e-sequence: %v", err)
			}
		}
		for i := range orig {
			if s[i] != orig[i] {
				t.Fatalf("input mutated at %d", i)
			}
		}
	})
}

// FuzzSequenceValidators: the validity checkers accept arbitrary garbage
// without panicking, and agree with each other where their domains
// overlap (an e-sequence over e distinct links is in particular a
// Hamiltonian subcube path).
func FuzzSequenceValidators(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 1, 0})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		seq := make(Seq, len(data))
		for i, b := range data {
			seq[i] = int(b%14) - 1 // includes the invalid link -1
		}
		sub := IsSubcubePath(seq)
		for e := 0; e <= 10; e++ {
			valid := IsESequence(seq, e)
			if valid != (ValidateESequence(seq, e) == nil) {
				t.Fatalf("IsESequence and ValidateESequence disagree at e=%d", e)
			}
			if valid && e >= 1 {
				// An e-sequence that actually uses all e links is a
				// Hamiltonian path of the full e-cube.
				distinct := map[int]bool{}
				for _, l := range seq {
					distinct[l] = true
				}
				if len(distinct) == e && !sub {
					t.Fatalf("valid e-sequence (e=%d) rejected by IsSubcubePath", e)
				}
			}
		}
	})
}
