package sequence

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPermutationBasics(t *testing.T) {
	id := IdentityPermutation(4)
	if !id.Valid() {
		t.Error("identity invalid")
	}
	tr := Transposition(4, 1, 3)
	if !tr.Valid() || tr[1] != 3 || tr[3] != 1 || tr[0] != 0 {
		t.Errorf("Transposition = %v", tr)
	}
	if !reflect.DeepEqual(Compose(tr, tr), id) {
		t.Error("transposition not involutive under Compose")
	}
	if !reflect.DeepEqual(tr.Inverse(), tr) {
		t.Error("transposition not self-inverse")
	}
	bad := Permutation{0, 0, 2}
	if bad.Valid() {
		t.Error("non-bijection accepted")
	}
	if (Permutation{0, 5}).Valid() {
		t.Error("out-of-range image accepted")
	}
}

// Compose(p, q) applies q first: verified against explicit evaluation.
func TestComposeOrder(t *testing.T) {
	p := Permutation{1, 2, 0} // 0->1,1->2,2->0
	q := Permutation{2, 1, 0} // 0->2,2->0
	pq := Compose(p, q)
	for i := 0; i < 3; i++ {
		if pq[i] != p[q[i]] {
			t.Fatalf("Compose wrong at %d", i)
		}
	}
}

// Paper's first Property-1 example: <010> with links 0,1 exchanged is <101>.
func TestApplyPermutationPaperExample(t *testing.T) {
	s, _ := ParseSeq("010")
	got, err := ApplyPermutation(s, Transposition(2, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "<101>" {
		t.Errorf("got %s", got.String())
	}
	if !IsESequence(got, 2) {
		t.Error("result not a 2-sequence")
	}
}

// Paper's second Property-1 example: applying the (0 1) transposition to the
// last 3 elements of <0102010> yields <0102101>, still a 3-sequence.
func TestApplySubcubePermutationPaperExample(t *testing.T) {
	s, _ := ParseSeq("0102010")
	p := Transposition(3, 0, 1)
	got, err := ApplySubcubePermutation(s, 3, 4, 7, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "<0102101>" {
		t.Errorf("got %s", got.String())
	}
}

func TestApplySubcubePermutationErrors(t *testing.T) {
	s, _ := ParseSeq("0102010")
	p := Transposition(3, 0, 1)
	if _, err := ApplySubcubePermutation(s, 3, 3, 7, p); err == nil {
		t.Error("range [3,7) is not a subcube path; should fail")
	}
	if _, err := ApplySubcubePermutation(s, 3, 5, 5, p); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := ApplySubcubePermutation(Seq{0, 1, 1}, 2, 0, 1, Transposition(2, 0, 1)); err == nil {
		t.Error("invalid input sequence should fail")
	}
	if _, err := ApplySubcubePermutation(s, 3, 4, 7, Permutation{0, 1}); err == nil {
		t.Error("wrong-size permutation should fail")
	}
	// A permutation that maps the subsequence's dimensions outside
	// themselves can break Hamiltonicity; the function must detect it.
	if _, err := ApplySubcubePermutation(s, 3, 4, 7, Permutation{2, 1, 0}); err == nil {
		t.Error("dimension-escaping permutation should be rejected by result validation")
	}
}

func TestIsSubcubePath(t *testing.T) {
	cases := []struct {
		s    string
		want bool
	}{
		{"0", true},
		{"010", true},
		{"232", true}, // 2-cube over dims {2,3}
		{"0102010", true},
		{"01", false},   // wrong length for 2 dims
		{"00", false},   // revisits
		{"0120", false}, // wrong length for 3 dims
	}
	for _, c := range cases {
		s, err := ParseSeq(c.s)
		if err != nil {
			t.Fatal(err)
		}
		if got := IsSubcubePath(s); got != c.want {
			t.Errorf("IsSubcubePath(%s) = %v, want %v", c.s, got, c.want)
		}
	}
	if IsSubcubePath(Seq{-1}) {
		t.Error("negative link accepted")
	}
}

// Property test: whole-sequence permutations always preserve the Hamiltonian
// property (the un-caveated half of Property 1).
func TestWholeSequencePermutationPreservesHamiltonian(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for e := 2; e <= 7; e++ {
		for trial := 0; trial < 30; trial++ {
			s := RandomESequence(e, rng)
			perm := Permutation(rng.Perm(e))
			got, err := ApplyPermutation(s, perm)
			if err != nil {
				t.Fatal(err)
			}
			if !IsESequence(got, e) {
				t.Fatalf("e=%d: permuted sequence invalid: %v via %v", e, s, perm)
			}
		}
	}
}

// Property test: pBR-style usage of Property 1 — permuting the second half
// (an (e-1)-subsequence of a BR sequence) with any permutation of [0, e-2]
// onto itself — always yields a valid e-sequence.
func TestSubcubePermutationPBRStyle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for e := 3; e <= 8; e++ {
		s := BR(e)
		half := SeqLen(e - 1)
		for trial := 0; trial < 20; trial++ {
			inner := rng.Perm(e - 1)
			perm := make(Permutation, e)
			for i, v := range inner {
				perm[i] = v
			}
			perm[e-1] = e - 1
			got, err := ApplySubcubePermutation(s, e, half+1, len(s), perm)
			if err != nil {
				t.Fatalf("e=%d trial=%d: %v", e, trial, err)
			}
			if !IsESequence(got, e) {
				t.Fatalf("e=%d: invalid result", e)
			}
		}
	}
}
