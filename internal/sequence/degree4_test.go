package sequence

import (
	"reflect"
	"testing"
)

// Paper section 3.3: D_5^D4 = <0123012401230121012301240123012>.
func TestDegree4PaperExample(t *testing.T) {
	want, err := ParseSeq("0123012" + "4" + "0123012" + "1" + "0123012" + "4" + "0123012")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Degree4(5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("D_5^D4 = %s, want %s", got.String(), want.String())
	}
}

func TestDegree4UndefinedBelow4(t *testing.T) {
	for e := 0; e < 4; e++ {
		if _, err := Degree4(e); err == nil {
			t.Errorf("Degree4(%d) should be undefined", e)
		}
	}
}

// Theorem 1 of the paper: D_e^D4 is an e-sequence. Verified mechanically.
func TestDegree4IsESequence(t *testing.T) {
	for e := 4; e <= 16; e++ {
		s, err := Degree4(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateESequence(s, e); err != nil {
			t.Errorf("e=%d: %v", e, err)
		}
	}
}

// Lemma 1 of the paper: following D_e^D4 from any node i ends at a node f
// that is i's neighbor in dimension 1.
func TestDegree4Lemma1EndpointNeighborInDim1(t *testing.T) {
	for e := 4; e <= 14; e++ {
		s, err := Degree4(e)
		if err != nil {
			t.Fatal(err)
		}
		// XOR structure: endpoint(start) = start ^ endpoint(0), so checking
		// start 0 covers all starts; we verify a couple anyway.
		for _, start := range []int{0, 1, 5} {
			end := Endpoint(s, e, start)
			if end != start^2 {
				t.Errorf("e=%d start=%d: endpoint %d, want neighbor in dim 1 (%d)", e, start, end, start^2)
			}
		}
	}
}

// Definition 2 check: the degree-4 sequence indeed has degree 4 for e > 3
// (for e = 4 links 0..3 dominate; the central separator windows are the only
// non-distinct ones).
func TestDegree4HasDegree4(t *testing.T) {
	for e := 4; e <= 14; e++ {
		s, err := Degree4(e)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Degree(); got != 4 {
			t.Errorf("Degree(D_%d^D4) = %d, want 4", e, got)
		}
	}
}

// Exactly four windows of length 4 contain a repeat (the ones straddling the
// central "1"), as the paper notes for any e > 3... for e = 4 the separators
// "4" are absent so the bad windows differ; assert the exact count for
// e >= 5.
func TestDegree4BadWindowCount(t *testing.T) {
	for e := 5; e <= 12; e++ {
		s, err := Degree4(e)
		if err != nil {
			t.Fatal(err)
		}
		bad := 0
		for _, st := range SlidingStats(s, 4) {
			if st.U != 4 {
				bad++
			}
		}
		if bad != 4 {
			t.Errorf("e=%d: %d non-distinct length-4 windows, want 4", e, bad)
		}
	}
}

func TestDegree4AlphaClosedForm(t *testing.T) {
	for e := 4; e <= 16; e++ {
		s, err := Degree4(e)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := s.Alpha(), Degree4Alpha(e); got != want {
			t.Errorf("α(D_%d^D4) = %d, closed form %d", e, got, want)
		}
	}
	if Degree4Alpha(3) != 0 {
		t.Error("Degree4Alpha(3) should be 0")
	}
}

// The auxiliary sequences E_i contain links 0..i and have length 2^(i-1)+
// ... precisely len(E_i) = 2*len(E_{i-1})+1 with len(E_3)=7.
func TestDegree4AuxLengths(t *testing.T) {
	wantLen := 7
	for i := 3; i <= 12; i++ {
		got := degree4E(i)
		if len(got) != wantLen {
			t.Errorf("len(E_%d) = %d, want %d", i, len(got), wantLen)
		}
		wantLen = 2*wantLen + 1
	}
}
