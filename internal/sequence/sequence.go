// Package sequence implements the link sequences D_e that define parallel
// Jacobi orderings on hypercubes, together with the quantities the paper uses
// to evaluate them.
//
// A link sequence for exchange phase e ("an e-sequence", Definition 1 of the
// paper) is a sequence of 2^e-1 link identifiers in [0,e-1] that describes a
// Hamiltonian path of an e-cube: starting at any node and crossing the listed
// dimensions in order visits every node of the cube exactly once.
//
// The package provides the Block-Recursive (BR) sequences, the permuted-BR
// sequences (section 3.2), the degree-4 sequences (section 3.3) and the
// minimum-α sequences (section 3.1), plus the analysis functions the paper's
// evaluation relies on: α (maximum number of repetitions of one link), the
// lower bound ceil((2^e-1)/e), the degree of a sequence (Definition 2), and
// sliding-window statistics used by the communication-pipelining cost model.
package sequence

import (
	"fmt"

	"repro/internal/hypercube"
)

// Seq is a sequence of hypercube link (dimension) identifiers.
type Seq []int

// Clone returns an independent copy of s.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// String renders the sequence in the paper's compact notation, e.g.
// "<0102010>". Link identifiers above 9 are rendered in brackets so the
// notation stays unambiguous for large cubes, e.g. "<01[12]0>".
func (s Seq) String() string {
	buf := make([]byte, 0, len(s)+2)
	buf = append(buf, '<')
	for _, l := range s {
		if l >= 0 && l <= 9 {
			buf = append(buf, byte('0'+l))
		} else {
			buf = append(buf, fmt.Sprintf("[%d]", l)...)
		}
	}
	buf = append(buf, '>')
	return string(buf)
}

// ParseSeq parses the compact notation produced by Seq.String; it accepts
// digits 0-9 and bracketed multi-digit identifiers, ignoring angle brackets
// and whitespace. It is the inverse of String and is used to embed the
// paper's printed sequences as test oracles.
func ParseSeq(text string) (Seq, error) {
	var out Seq
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '<' || c == '>' || c == ' ' || c == '\n' || c == '\t':
			i++
		case c >= '0' && c <= '9':
			out = append(out, int(c-'0'))
			i++
		case c == '[':
			j := i + 1
			v := 0
			for j < len(text) && text[j] != ']' {
				if text[j] < '0' || text[j] > '9' {
					return nil, fmt.Errorf("sequence: bad bracketed link at byte %d", j)
				}
				v = v*10 + int(text[j]-'0')
				j++
			}
			if j == len(text) {
				return nil, fmt.Errorf("sequence: unterminated bracket at byte %d", i)
			}
			out = append(out, v)
			i = j + 1
		default:
			return nil, fmt.Errorf("sequence: unexpected byte %q at %d", c, i)
		}
	}
	return out, nil
}

// Counts returns how many times each link in [0,e-1] occurs in s.
// Links outside the range cause an error.
func (s Seq) Counts(e int) ([]int, error) {
	counts := make([]int, e)
	for i, l := range s {
		if l < 0 || l >= e {
			return nil, fmt.Errorf("sequence: element %d is link %d, outside [0,%d]", i, l, e-1)
		}
		counts[l]++
	}
	return counts, nil
}

// Alpha returns α(s): the maximum number of repetitions of a single link in
// the sequence (section 3.1). α is what bounds the size of the combined
// message that must cross the busiest link in a deep-pipelining kernel stage.
func (s Seq) Alpha() int {
	counts := make(map[int]int)
	max := 0
	for _, l := range s {
		counts[l]++
		if counts[l] > max {
			max = counts[l]
		}
	}
	return max
}

// LowerBoundAlpha returns the lower bound on α for any e-sequence:
// ceil((2^e-1)/e). Every link in [0,e-1] must appear at least once in the
// 2^e-1 elements, so some link must appear at least this often.
func LowerBoundAlpha(e int) int {
	if e <= 0 {
		return 0
	}
	n := (1 << uint(e)) - 1
	return (n + e - 1) / e
}

// SeqLen returns the length of an e-sequence, 2^e - 1.
func SeqLen(e int) int {
	if e <= 0 {
		return 0
	}
	return (1 << uint(e)) - 1
}

// IsESequence reports whether s is an e-sequence: a Hamiltonian path of the
// e-cube (paper Definition 1). By vertex-transitivity of the hypercube the
// start node is irrelevant; node 0 is used.
func IsESequence(s Seq, e int) bool {
	if e < 0 || e > hypercube.MaxDim {
		return false
	}
	if e == 0 {
		return len(s) == 0
	}
	return hypercube.New(e).IsHamiltonianPath(0, []int(s))
}

// ValidateESequence is IsESequence with a diagnostic error explaining the
// first violation found.
func ValidateESequence(s Seq, e int) error {
	if e < 0 || e > hypercube.MaxDim {
		return fmt.Errorf("sequence: dimension %d out of range", e)
	}
	if len(s) != SeqLen(e) {
		return fmt.Errorf("sequence: length %d, want %d for e=%d", len(s), SeqLen(e), e)
	}
	if e == 0 {
		return nil
	}
	cube := hypercube.New(e)
	visited := make([]bool, cube.Nodes())
	visited[0] = true
	cur := 0
	for i, l := range s {
		if !cube.ValidLink(l) {
			return fmt.Errorf("sequence: element %d is link %d, outside [0,%d]", i, l, e-1)
		}
		cur = cube.Neighbor(cur, l)
		if visited[cur] {
			return fmt.Errorf("sequence: element %d (link %d) revisits node %d", i, l, cur)
		}
		visited[cur] = true
	}
	return nil
}

// Endpoint returns the node reached by following s from start in an e-cube.
func Endpoint(s Seq, e, start int) int {
	cur := start
	for _, l := range s {
		cur ^= 1 << uint(l)
	}
	return cur
}

// Degree returns the degree of the sequence per Definition 2 of the paper:
// the largest n such that the majority (strictly more than half) of the
// length-n windows of s consist of n distinct links. Shallow pipelining with
// degree-n sequences can cut communication cost by a factor of about n.
//
// Every sequence with at least one element has degree >= 1; Hamiltonian-path
// sequences have degree >= 2 since an immediately repeated link would revisit
// a node.
func (s Seq) Degree() int {
	if len(s) == 0 {
		return 0
	}
	distinctTotal := make(map[int]bool)
	for _, l := range s {
		distinctTotal[l] = true
	}
	deg := 1
	for n := 2; n <= len(distinctTotal) && n <= len(s); n++ {
		if majorityDistinct(s, n) {
			deg = n
		} else {
			break
		}
	}
	return deg
}

// majorityDistinct reports whether strictly more than half of the length-n
// windows of s contain n distinct elements.
func majorityDistinct(s Seq, n int) bool {
	windows := len(s) - n + 1
	if windows <= 0 {
		return false
	}
	counts := make(map[int]int)
	distinct := 0
	good := 0
	for i, l := range s {
		counts[l]++
		if counts[l] == 1 {
			distinct++
		}
		if i >= n {
			old := s[i-n]
			counts[old]--
			if counts[old] == 0 {
				distinct--
			}
		}
		if i >= n-1 && distinct == n {
			good++
		}
	}
	return 2*good > windows
}

// WindowStat summarizes one communication window of a pipelined schedule:
// U is the number of distinct links in the window (how many messages are
// sent, one per link, after combining) and R is the maximum number of packets
// that share one link (how many packets are combined into the largest
// message). The all-port stage cost is U*Ts + R*packetSize*Tw.
type WindowStat struct {
	U int // distinct links in the window
	R int // maximum multiplicity of one link
}

// windowTracker maintains U and R incrementally while elements are added to
// and removed from a multiset of links. Removal is supported in FIFO order
// only by the callers here, but the tracker itself is order-agnostic.
type windowTracker struct {
	counts   []int // per link
	histo    []int // histo[c] = number of links with count c, c >= 1
	distinct int
	maxMult  int
}

func newWindowTracker(maxLink, capacity int) *windowTracker {
	return &windowTracker{
		counts: make([]int, maxLink+1),
		histo:  make([]int, capacity+2),
	}
}

func (w *windowTracker) add(link int) {
	c := w.counts[link]
	w.counts[link] = c + 1
	if c == 0 {
		w.distinct++
	} else {
		w.histo[c]--
	}
	w.histo[c+1]++
	if c+1 > w.maxMult {
		w.maxMult = c + 1
	}
}

func (w *windowTracker) remove(link int) {
	c := w.counts[link]
	w.counts[link] = c - 1
	w.histo[c]--
	if c == 1 {
		w.distinct--
	} else {
		w.histo[c-1]++
	}
	if c == w.maxMult && w.histo[c] == 0 {
		w.maxMult--
	}
}

func (w *windowTracker) stat() WindowStat {
	return WindowStat{U: w.distinct, R: w.maxMult}
}

// maxLinkOf returns the largest link identifier in s, or 0 for empty s.
func maxLinkOf(s Seq) int {
	max := 0
	for _, l := range s {
		if l > max {
			max = l
		}
	}
	return max
}

// SlidingStats returns the WindowStat of every length-n window of s, in
// order. It runs in O(len(s)) time. n must be in [1, len(s)].
func SlidingStats(s Seq, n int) []WindowStat {
	if n < 1 || n > len(s) {
		return nil
	}
	out := make([]WindowStat, 0, len(s)-n+1)
	tr := newWindowTracker(maxLinkOf(s), n)
	for i, l := range s {
		tr.add(l)
		if i >= n {
			tr.remove(s[i-n])
		}
		if i >= n-1 {
			out = append(out, tr.stat())
		}
	}
	return out
}

// PrefixStats returns the WindowStats of the prefixes of s with lengths
// 1..n (n capped at len(s)).
func PrefixStats(s Seq, n int) []WindowStat {
	if n > len(s) {
		n = len(s)
	}
	out := make([]WindowStat, 0, n)
	tr := newWindowTracker(maxLinkOf(s), n)
	for i := 0; i < n; i++ {
		tr.add(s[i])
		out = append(out, tr.stat())
	}
	return out
}

// SuffixStats returns the WindowStats of the suffixes of s with lengths
// 1..n (n capped at len(s)), ordered by increasing length.
func SuffixStats(s Seq, n int) []WindowStat {
	if n > len(s) {
		n = len(s)
	}
	out := make([]WindowStat, 0, n)
	tr := newWindowTracker(maxLinkOf(s), n)
	for i := 0; i < n; i++ {
		tr.add(s[len(s)-1-i])
		out = append(out, tr.stat())
	}
	return out
}

// FullStat returns the WindowStat of the entire sequence: U is the number of
// distinct links and R equals Alpha().
func FullStat(s Seq) WindowStat {
	tr := newWindowTracker(maxLinkOf(s), len(s))
	for _, l := range s {
		tr.add(l)
	}
	return tr.stat()
}
