package sequence

import (
	"math"
	"testing"
)

func TestDiversityProfileBasics(t *testing.T) {
	s := Seq{0, 1, 2, 0, 1, 2}
	prof := DiversityProfile(s, 3)
	if len(prof) != 3 {
		t.Fatalf("profile length %d", len(prof))
	}
	// Window 1: always 1 distinct.
	if prof[0].MeanU != 1 || prof[0].Distinct != 6 {
		t.Errorf("w=1: %+v", prof[0])
	}
	// Window 3: every window of this periodic sequence is fully distinct.
	if prof[2].Distinct != prof[2].Windows || prof[2].MaxR != 1 {
		t.Errorf("w=3: %+v", prof[2])
	}
}

// The degree-4 sequence's profile: window 4 is almost fully diverse, window
// 5 is not — the quantitative version of Definition 2.
func TestDiversityProfileDegree4(t *testing.T) {
	s, err := Degree4(8)
	if err != nil {
		t.Fatal(err)
	}
	prof := DiversityProfile(s, 5)
	w4, w5 := prof[3], prof[4]
	if frac := float64(w4.Distinct) / float64(w4.Windows); frac < 0.9 {
		t.Errorf("degree-4 w=4 distinct fraction %.2f, want > 0.9", frac)
	}
	if frac := float64(w5.Distinct) / float64(w5.Windows); frac > 0.5 {
		t.Errorf("degree-4 w=5 distinct fraction %.2f, want < 0.5", frac)
	}
}

// BR windows are half zeros: MeanR of a window of length q approaches q/2,
// so the shallow speed-up estimate caps near 2 (paper section 2.4).
func TestShallowSpeedupBRCap(t *testing.T) {
	s := BR(8)
	for _, q := range []int{2, 4, 8} {
		gain, err := ShallowSpeedupEstimate(s, q)
		if err != nil {
			t.Fatal(err)
		}
		if gain > 2.2 {
			t.Errorf("BR q=%d speedup estimate %.2f, want <= ~2", q, gain)
		}
	}
}

// Degree-4 windows of length 4 are almost all distinct: the estimate comes
// out near 4.
func TestShallowSpeedupDegree4(t *testing.T) {
	s, err := Degree4(8)
	if err != nil {
		t.Fatal(err)
	}
	gain, err := ShallowSpeedupEstimate(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 3.5 {
		t.Errorf("degree-4 q=4 speedup estimate %.2f, want ~4", gain)
	}
}

func TestShallowSpeedupErrors(t *testing.T) {
	if _, err := ShallowSpeedupEstimate(BR(3), 0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := ShallowSpeedupEstimate(BR(3), 8); err == nil {
		t.Error("q beyond length accepted")
	}
}

func TestCountSpread(t *testing.T) {
	min, max, err := CountSpread(BR(5), 5)
	if err != nil {
		t.Fatal(err)
	}
	if min != 1 || max != 16 {
		t.Errorf("BR(5) spread [%d,%d], want [1,16]", min, max)
	}
	// permuted-BR's spread must be far tighter.
	minP, maxP, err := CountSpread(PermutedBR(9), 9)
	if err != nil {
		t.Fatal(err)
	}
	if maxP-minP >= 256 {
		t.Errorf("permuted-BR(9) spread [%d,%d] too wide", minP, maxP)
	}
	if _, _, err := CountSpread(Seq{5}, 3); err == nil {
		t.Error("out-of-range link accepted")
	}
}

// Profile consistency: MeanR * windows must equal the sum of window R's
// recomputed naively for a modest case.
func TestDiversityProfileConsistency(t *testing.T) {
	s := PermutedBR(6)
	prof := DiversityProfile(s, 6)
	for _, pt := range prof {
		stats := SlidingStats(s, pt.Window)
		sum := 0
		for _, st := range stats {
			sum += st.R
		}
		if math.Abs(pt.MeanR*float64(pt.Windows)-float64(sum)) > 1e-9 {
			t.Errorf("w=%d MeanR inconsistent", pt.Window)
		}
	}
}
