package sequence

import "math/rand"

// TransformCandidates generates up to count distinct candidate e-sequences
// for the ordering auto-tuner's search (internal/tuner). Candidates are
// derived from the package's transform toolbox rather than sampled blindly:
//
//   - the paper's base sequences (BR, permuted-BR, and where defined
//     degree-4 and minimum-α) relabelled through random hypercube
//     automorphisms (Property 1 whole-sequence permutations);
//   - fully random Hamiltonian paths from RandomESequence, which itself
//     mixes randomized DFS with automorphism + subcube-permutation
//     scrambles of BR.
//
// Every returned sequence is a validated e-sequence (ValidateESequence
// returns nil), so downstream sweep construction cannot be handed an
// illegal ordering; duplicates (by compact string form) are filtered.
// Generation is deterministic for a given rng state. e must be in
// [1, MaxRandomDim].
func TransformCandidates(e, count int, rng *rand.Rand) []Seq {
	checkDim(e)
	if e < 1 || e > MaxRandomDim {
		panic("sequence: TransformCandidates dimension outside [1, MaxRandomDim]")
	}
	if count <= 0 {
		return nil
	}

	bases := []Seq{BR(e), PermutedBR(e)}
	if s, err := Degree4(e); err == nil {
		bases = append(bases, s)
	}
	if s, err := MinAlpha(e); err == nil {
		bases = append(bases, s)
	}

	out := make([]Seq, 0, count)
	seen := make(map[string]bool)
	add := func(s Seq) {
		if s == nil || ValidateESequence(s, e) != nil {
			return
		}
		key := s.String()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, s)
	}

	// Interleave relabelled base sequences with fully random paths until
	// the quota is met. The attempt budget bounds the loop when the space
	// is too small to yield count distinct sequences (e.g. e = 1).
	for attempts := 0; len(out) < count && attempts < 20*count+20; attempts++ {
		if attempts%2 == 0 {
			base := bases[attempts/2%len(bases)]
			p := randomAutomorphism(e, rng)
			if s, err := ApplyPermutation(base, p); err == nil {
				add(s)
			}
			continue
		}
		add(RandomESequence(e, rng))
	}
	return out
}

// randomAutomorphism returns a uniformly random permutation of the e link
// identifiers — a hypercube automorphism under Property 1.
func randomAutomorphism(e int, rng *rand.Rand) Permutation {
	p := IdentityPermutation(e)
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
