package sequence

import "fmt"

// DiversityPoint describes how link-diverse the windows of one length are:
// shallow pipelining with degree Q uses windows of length Q, and its
// speed-up is governed by how many distinct links (MeanU) a window offers
// and how many packets pile onto the busiest link (MeanR, MaxR).
type DiversityPoint struct {
	Window   int
	MeanU    float64 // average distinct links per window
	MinU     int     // worst window's distinct links
	MeanR    float64 // average max-multiplicity per window
	MaxR     int     // worst window's max multiplicity
	Distinct int     // number of windows whose links are all distinct
	Windows  int     // total windows of this length
}

// DiversityProfile computes DiversityPoints for window lengths 1..maxW
// (capped at the sequence length). It is the quantitative backing for the
// paper's Definition 2: a sequence "has degree n" when the majority of
// length-n windows are fully distinct.
func DiversityProfile(s Seq, maxW int) []DiversityPoint {
	if maxW > len(s) {
		maxW = len(s)
	}
	out := make([]DiversityPoint, 0, maxW)
	for w := 1; w <= maxW; w++ {
		stats := SlidingStats(s, w)
		pt := DiversityPoint{Window: w, Windows: len(stats), MinU: w + 1}
		sumU, sumR := 0, 0
		for _, st := range stats {
			sumU += st.U
			sumR += st.R
			if st.U < pt.MinU {
				pt.MinU = st.U
			}
			if st.R > pt.MaxR {
				pt.MaxR = st.R
			}
			if st.U == w {
				pt.Distinct++
			}
		}
		pt.MeanU = float64(sumU) / float64(len(stats))
		pt.MeanR = float64(sumR) / float64(len(stats))
		out = append(out, pt)
	}
	return out
}

// ShallowSpeedupEstimate estimates the communication speed-up shallow
// pipelining with degree q extracts from the sequence on an all-port
// machine, ignoring start-up costs: the window carries q packets and the
// busiest link serializes MeanR of them, so the transmission-time gain is
// q / MeanR.
func ShallowSpeedupEstimate(s Seq, q int) (float64, error) {
	if q < 1 || q > len(s) {
		return 0, fmt.Errorf("sequence: window %d out of range [1,%d]", q, len(s))
	}
	stats := SlidingStats(s, q)
	sumR := 0
	for _, st := range stats {
		sumR += st.R
	}
	meanR := float64(sumR) / float64(len(stats))
	return float64(q) / meanR, nil
}

// CountSpread returns the minimum and maximum link occurrence counts over
// links [0, e-1] — the raw numbers behind α and the balance claims.
func CountSpread(s Seq, e int) (min, max int, err error) {
	counts, err := s.Counts(e)
	if err != nil {
		return 0, 0, err
	}
	min, max = counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return min, max, nil
}
