package sequence

import (
	"math/rand"
	"testing"
)

// Every candidate the tuner's generator hands out must be a legal
// e-sequence — the search pipeline assumes it never sees an invalid one.
func TestTransformCandidatesAllValid(t *testing.T) {
	for e := 1; e <= 8; e++ {
		rng := rand.New(rand.NewSource(int64(40 + e)))
		cands := TransformCandidates(e, 8, rng)
		if len(cands) == 0 {
			t.Fatalf("e=%d: no candidates", e)
		}
		seen := make(map[string]bool)
		for _, s := range cands {
			if err := ValidateESequence(s, e); err != nil {
				t.Errorf("e=%d: invalid candidate %v: %v", e, s, err)
			}
			key := s.String()
			if seen[key] {
				t.Errorf("e=%d: duplicate candidate %v", e, s)
			}
			seen[key] = true
		}
	}
}

// Candidate generation is deterministic per rng seed — the tuner's
// searches must be reproducible.
func TestTransformCandidatesDeterministic(t *testing.T) {
	a := TransformCandidates(4, 6, rand.New(rand.NewSource(7)))
	b := TransformCandidates(4, 6, rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("candidate %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// A dimension whose sequence space is smaller than the quota must
// terminate (attempt budget) and return only the distinct sequences that
// exist: for e=1 that is exactly the single-link sequence "0".
func TestTransformCandidatesSmallSpace(t *testing.T) {
	cands := TransformCandidates(1, 10, rand.New(rand.NewSource(1)))
	if len(cands) != 1 || cands[0].String() != BR(1).String() {
		t.Fatalf("e=1 candidates = %v, want exactly the one-link sequence", cands)
	}
}

func TestTransformCandidatesRejectsBadDims(t *testing.T) {
	for _, e := range []int{0, MaxRandomDim + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("e=%d: expected panic", e)
				}
			}()
			TransformCandidates(e, 1, rand.New(rand.NewSource(1)))
		}()
	}
}
