package sequence

import "math/bits"

// The permuted-BR sequence D_e^p-BR (paper section 3.2) is obtained from
// D_e^BR by a series of link-permutation transformations that balance how
// often each link appears, driving α from 2^(e-1) down to roughly
// 1.25 * ceil((2^e-1)/e).
//
// Transformation k (k = 0,1,...) applies a link permutation to every other
// (e-k-1)-subsequence of the current sequence, starting at the second one.
// The base permutation of transformation k transposes i <-> h_k-1-i for
// i in [0, h_k-1], where h_k = (e-1)/2^k; for the remaining transformed
// subsequences the base permutation is compounded with (conjugated by) every
// permutation previously applied to an enclosing subsequence.
//
// The paper defines h_k only when e-1 is a power of two (its appendix assumes
// e = 2^S + 1). For general e the division (e-1)/2^k must be rounded. We use
// floor division, which reproduces the paper's worked D_5^p-BR example
// exactly and tracks its Table 1 α values within ±1 for six of eight entries
// (and produces *smaller* α for e = 11 and 12). The residual deltas are
// recorded in EXPERIMENTS.md; every generated sequence is machine-verified to
// be a valid e-sequence regardless of convention.

// PBRRounding selects how the half-range h_k = (e-1)/2^k is made integral
// for general e. All conventions coincide when e-1 is a power of two.
// (Iterated halving h_{k+1} = floor(h_k/2) coincides with PBRFloorDiv, and
// h_{k+1} = ceil(h_k/2) with PBRCeilDiv, so only the three division rules
// are distinct.)
type PBRRounding int

const (
	// PBRFloorDiv uses h_k = floor((e-1) / 2^k).
	PBRFloorDiv PBRRounding = iota
	// PBRCeilDiv uses h_k = ceil((e-1) / 2^k).
	PBRCeilDiv
	// PBRRoundDiv uses h_k = round((e-1) / 2^k) (half away from zero).
	PBRRoundDiv
)

// DefaultPBRRounding is the convention used by PermutedBR: the one that
// reproduces the paper's printed D_5^p-BR and comes closest to its Table 1
// (see TestPermutedBRTable1 for the calibration evidence).
const DefaultPBRRounding = PBRFloorDiv

// PermutedBR returns D_e^p-BR using the calibrated rounding convention.
func PermutedBR(e int) Seq {
	return PermutedBRWithRounding(e, DefaultPBRRounding)
}

// PermutedBRWithRounding returns D_e^p-BR under an explicit rounding
// convention for the transposition half-ranges.
func PermutedBRWithRounding(e int, r PBRRounding) Seq {
	checkDim(e)
	br := BR(e)
	if e < 3 {
		// log2(e-1) <= 0 transformations: the sequence is unchanged.
		return br
	}
	sigmas := pbrSigmas(e, r)
	return applyPBRTransforms(br, e, sigmas)
}

// pbrHalfRanges returns the transposition half-ranges h_0, h_1, ... for the
// given rounding convention, stopping before the first h_k < 2 (a
// transposition over fewer than two links is the identity). The count is
// additionally capped at e-2 because transformation k permutes
// (e-k-1)-subsequences, which need dimension at least 1.
func pbrHalfRanges(e int, r PBRRounding) []int {
	var out []int
	for k := 0; k <= e; k++ {
		num := e - 1
		den := 1 << uint(k)
		var h int
		switch r {
		case PBRCeilDiv:
			h = (num + den - 1) / den
		case PBRRoundDiv:
			h = (2*num + den) / (2 * den)
		default: // PBRFloorDiv
			h = num / den
		}
		if h < 2 {
			break
		}
		out = append(out, h)
	}
	if len(out) > e-2 {
		out = out[:e-2]
	}
	return out
}

// pbrSigmas materializes the base permutation of each transformation as an
// array over the link alphabet [0, e-1].
func pbrSigmas(e int, r PBRRounding) [][]int {
	ranges := pbrHalfRanges(e, r)
	sigmas := make([][]int, len(ranges))
	for k, h := range ranges {
		sigma := make([]int, e)
		for i := range sigma {
			sigma[i] = i
		}
		for i := 0; i < h; i++ {
			sigma[i] = h - 1 - i
		}
		sigmas[k] = sigma
	}
	return sigmas
}

// applyPBRTransforms applies the transformation cascade to a BR sequence.
//
// Rather than mutating the sequence level by level, each position's final
// label is computed directly. A position p belongs, at transformation level
// k, to the (e-k-1)-subsequence with index j = p >> (e-k-1) — unless p is a
// separator element consumed at some earlier level. p separates two level-k
// blocks exactly when its e-k-1 low bits are all ones, so p stops being part
// of blocks from level kSep(p) = e-1-trailingOnes(p) onward.
//
// The compounding rule ("compound with the permutations applied to enclosing
// subsequences" = conjugation) collapses to: apply, to the original BR label,
// the base permutations of all levels k < kSep(p) whose block index j is odd,
// with larger k applied first. The worked D_5^p-BR example in the tests
// reproduces the paper's printed result exactly.
func applyPBRTransforms(br Seq, e int, sigmas [][]int) Seq {
	out := make(Seq, len(br))
	for p, v := range br {
		trailingOnes := bits.TrailingZeros(^uint(p))
		kSep := e - 1 - trailingOnes
		lim := len(sigmas)
		if kSep < lim {
			lim = kSep
		}
		for k := lim - 1; k >= 0; k-- {
			j := p >> uint(e-k-1)
			if j%2 == 1 {
				v = sigmas[k][v]
			}
		}
		out[p] = v
	}
	return out
}

// PermutedBRAlpha returns α(D_e^p-BR) for the calibrated convention. This is
// the quantity tabulated in the paper's Table 1.
func PermutedBRAlpha(e int) int {
	return PermutedBR(e).Alpha()
}

// PBRUpperBoundAlpha returns the analytic upper bound on α(D_e^p-BR) from
// Theorem 2 of the paper's appendix (derived assuming e-1 is a power of two):
//
//	α <= 2^e/(e-1) + 2^(e-2)/(e-1) - 2^e/(e-1)^2
//
// Theorem 3 shows this bound tends to 1.25 times the lower bound
// ceil((2^e-1)/e) as e grows.
func PBRUpperBoundAlpha(e int) float64 {
	if e < 2 {
		return float64(SeqLen(e))
	}
	f := float64(int64(1) << uint(e))
	em1 := float64(e - 1)
	return f/em1 + (f/4)/em1 - f/(em1*em1)
}
