package sequence

import "fmt"

// The degree-4 sequence D_e^D4 (paper section 3.3, Definition 3) is built so
// that most windows of four consecutive elements contain four distinct links,
// which lets shallow communication pipelining cut the communication cost by a
// factor of about four:
//
//	E_3     = <0123012>
//	E_i     = <E_{i-1}, i, E_{i-1}>          4 <= i < e
//	D_e^D4  = <E_{e-1}, 1, E_{e-1}>          e >= 4
//
// For example D_5^D4 = <0123012 4 0123012 1 0123012 4 0123012>. Only the four
// windows straddling the central "1" fail to have 4 distinct elements
// (<0121>, <1210>, <2101>, <1012>), which is negligible for large e.
// Theorem 1 of the paper proves D_e^D4 is an e-sequence; our tests verify it
// mechanically for every supported e.

// Degree4MinDim is the smallest e for which D_e^D4 is defined.
const Degree4MinDim = 4

// Degree4 returns D_e^D4. It returns an error for e < 4, where the sequence
// is undefined (ordering families fall back to BR for those phases; the
// paper makes the analogous substitution in its evaluation footnote).
func Degree4(e int) (Seq, error) {
	checkDim(e)
	if e < Degree4MinDim {
		return nil, fmt.Errorf("sequence: D_e^D4 is undefined for e=%d < %d", e, Degree4MinDim)
	}
	base := degree4E(e - 1)
	out := make(Seq, 0, 2*len(base)+1)
	out = append(out, base...)
	out = append(out, 1)
	out = append(out, base...)
	return out, nil
}

// degree4E returns the auxiliary sequence E_i for i >= 3.
func degree4E(i int) Seq {
	cur := Seq{0, 1, 2, 3, 0, 1, 2} // E_3
	for j := 4; j <= i; j++ {
		next := make(Seq, 0, 2*len(cur)+1)
		next = append(next, cur...)
		next = append(next, j)
		next = append(next, cur...)
		cur = next
	}
	return cur
}

// Degree4Alpha returns α(D_e^D4) in closed form: link 1 appears
// 2^(e-2)+1 times (2*2^(e-3) occurrences inside the two copies of E_{e-1}
// plus the central separator), which dominates links 0 and 2 at 2^(e-2).
func Degree4Alpha(e int) int {
	if e < Degree4MinDim {
		return 0
	}
	return 1<<uint(e-2) + 1
}
