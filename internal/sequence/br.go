package sequence

import (
	"fmt"

	"repro/internal/bitutil"
)

// BR returns the Block-Recursive link sequence D_e^BR of Mantharam & Eberlein
// (paper section 2.3.1):
//
//	D_1^BR = <0>
//	D_i^BR = <D_{i-1}^BR, i-1, D_{i-1}^BR>
//
// For example D_4^BR = <010201030102010>. The t-th element (0-based) equals
// the ruler function trailingZeros(t+1), which also makes D_e^BR the link
// sequence of the binary-reflected Gray-code Hamiltonian path.
//
// BR panics for e outside [0, hypercube.MaxDim]; e is a structural constant
// in all callers.
func BR(e int) Seq {
	checkDim(e)
	n := SeqLen(e)
	out := make(Seq, n)
	for t := 0; t < n; t++ {
		out[t] = bitutil.TrailingZeros(t + 1)
	}
	return out
}

// BRAlpha returns α(D_e^BR) = 2^(e-1) without materializing the sequence:
// link 0 appears in every other position (paper section 3.1).
func BRAlpha(e int) int {
	if e <= 0 {
		return 0
	}
	return 1 << uint(e-1)
}

// BRCount returns the number of occurrences of link i in D_e^BR, which is
// 2^(e-1-i). The geometric decay of these counts is what the permuted-BR
// transformation balances out.
func BRCount(e, i int) int {
	if i < 0 || i >= e {
		return 0
	}
	return 1 << uint(e-1-i)
}

// brSubsequenceOffsets returns the start offsets of the level-k blocks of
// D_e^BR, i.e. of its (e-k-1)-subsequences. Block j occupies
// [j*2^(e-k-1), (j+1)*2^(e-k-1)-1) and blocks are separated by single
// separator elements.
func brSubsequenceOffsets(e, k int) []int {
	stride := 1 << uint(e-k-1)
	n := 1 << uint(k+1)
	out := make([]int, n)
	for j := range out {
		out[j] = j * stride
	}
	return out
}

func checkDim(e int) {
	if e < 0 || e > 26 {
		panic(fmt.Sprintf("sequence: dimension %d out of range [0,26]", e))
	}
}
