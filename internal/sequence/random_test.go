package sequence

import (
	"math/rand"
	"testing"
)

func TestRandomESequenceValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for e := 0; e <= 8; e++ {
		for trial := 0; trial < 10; trial++ {
			s := RandomESequence(e, rng)
			if err := ValidateESequence(s, e); err != nil {
				t.Fatalf("e=%d: %v", e, err)
			}
		}
	}
}

func TestRandomESequenceDeterministicPerSeed(t *testing.T) {
	a := RandomESequence(6, rand.New(rand.NewSource(99)))
	b := RandomESequence(6, rand.New(rand.NewSource(99)))
	if a.String() != b.String() {
		t.Error("same seed produced different sequences")
	}
}

// Different seeds should usually produce different paths, demonstrating the
// generator actually explores the space (statistical, not strict).
func TestRandomESequenceVariety(t *testing.T) {
	seen := make(map[string]bool)
	for seed := int64(0); seed < 20; seed++ {
		s := RandomESequence(5, rand.New(rand.NewSource(seed)))
		seen[s.String()] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct sequences across 20 seeds", len(seen))
	}
}
