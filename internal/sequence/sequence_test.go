package sequence

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSeqStringAndParseRoundTrip(t *testing.T) {
	cases := []Seq{
		{},
		{0},
		{0, 1, 0, 2, 0, 1, 0},
		{0, 11, 3, 25},
	}
	for _, s := range cases {
		got, err := ParseSeq(s.String())
		if err != nil {
			t.Fatalf("ParseSeq(%q): %v", s.String(), err)
		}
		if !reflect.DeepEqual(got, s) && !(len(got) == 0 && len(s) == 0) {
			t.Errorf("round trip of %v gave %v", s, got)
		}
	}
}

func TestSeqStringNotation(t *testing.T) {
	if got := (Seq{0, 1, 0, 2}).String(); got != "<0102>" {
		t.Errorf("String = %q", got)
	}
	if got := (Seq{0, 12}).String(); got != "<0[12]>" {
		t.Errorf("String = %q", got)
	}
}

func TestParseSeqErrors(t *testing.T) {
	for _, text := range []string{"01a2", "0[12", "[x]"} {
		if _, err := ParseSeq(text); err == nil {
			t.Errorf("ParseSeq(%q) succeeded", text)
		}
	}
	// Whitespace and angle brackets are ignored.
	got, err := ParseSeq("<01 0\t2>\n")
	if err != nil || !reflect.DeepEqual(got, Seq{0, 1, 0, 2}) {
		t.Errorf("ParseSeq with whitespace = %v, %v", got, err)
	}
}

func TestCounts(t *testing.T) {
	s := Seq{0, 1, 0, 2, 0, 1, 0}
	counts, err := s.Counts(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(counts, []int{4, 2, 1}) {
		t.Errorf("Counts = %v", counts)
	}
	if _, err := s.Counts(2); err == nil {
		t.Error("Counts(2) should reject link 2")
	}
	if _, err := (Seq{-1}).Counts(2); err == nil {
		t.Error("Counts should reject negative link")
	}
}

func TestAlpha(t *testing.T) {
	cases := []struct {
		s    Seq
		want int
	}{
		{Seq{}, 0},
		{Seq{0}, 1},
		{Seq{0, 1, 0, 2, 0, 1, 0}, 4},
		{Seq{3, 3, 3}, 3},
		{Seq{0, 1, 2, 3}, 1},
	}
	for _, c := range cases {
		if got := c.s.Alpha(); got != c.want {
			t.Errorf("Alpha(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestLowerBoundAlpha(t *testing.T) {
	cases := []struct{ e, want int }{
		{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 7}, {6, 11},
		{7, 19}, {8, 32}, {9, 57}, {10, 103}, {11, 187},
		{12, 342}, {13, 631}, {14, 1171},
		{0, 0},
	}
	for _, c := range cases {
		if got := LowerBoundAlpha(c.e); got != c.want {
			t.Errorf("LowerBoundAlpha(%d) = %d, want %d", c.e, got, c.want)
		}
	}
}

// Any e-sequence has α >= LowerBoundAlpha(e): checked on random Hamiltonian
// paths.
func TestAlphaLowerBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for e := 1; e <= 7; e++ {
		for trial := 0; trial < 20; trial++ {
			s := RandomESequence(e, rng)
			if s.Alpha() < LowerBoundAlpha(e) {
				t.Fatalf("e=%d: α=%d below bound %d for %v", e, s.Alpha(), LowerBoundAlpha(e), s)
			}
		}
	}
}

func TestSeqLen(t *testing.T) {
	for e := 0; e <= 10; e++ {
		want := 1<<uint(e) - 1
		if got := SeqLen(e); got != want {
			t.Errorf("SeqLen(%d) = %d, want %d", e, got, want)
		}
	}
}

func TestIsESequence(t *testing.T) {
	if !IsESequence(Seq{0, 1, 0, 2, 0, 1, 0}, 3) {
		t.Error("BR 3-sequence rejected")
	}
	if IsESequence(Seq{0, 1, 0, 2, 0, 1, 1}, 3) {
		t.Error("invalid sequence accepted")
	}
	if IsESequence(Seq{0}, 3) {
		t.Error("wrong length accepted")
	}
	if !IsESequence(Seq{}, 0) {
		t.Error("empty 0-sequence rejected")
	}
	if IsESequence(Seq{}, -1) {
		t.Error("negative dimension accepted")
	}
}

func TestValidateESequenceDiagnostics(t *testing.T) {
	if err := ValidateESequence(Seq{0, 1, 0, 2, 0, 1, 0}, 3); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	if err := ValidateESequence(Seq{0, 1}, 3); err == nil {
		t.Error("short sequence accepted")
	}
	if err := ValidateESequence(Seq{0, 3, 0, 2, 0, 1, 0}, 3); err == nil {
		t.Error("out-of-range link accepted")
	}
	if err := ValidateESequence(Seq{0, 0, 1, 2, 0, 1, 0}, 3); err == nil {
		t.Error("revisiting sequence accepted")
	}
}

func TestEndpoint(t *testing.T) {
	// BR sequence of a 3-cube ends at node 4 when started at 0
	// (Gray path: 0,1,3,2,6,7,5,4).
	if got := Endpoint(BR(3), 3, 0); got != 4 {
		t.Errorf("Endpoint(BR(3)) = %d, want 4", got)
	}
	// XOR-translation property: endpoint from s equals endpoint from 0
	// xor s.
	f := func(start uint8) bool {
		s := int(start) & 7
		return Endpoint(BR(3), 3, s) == (4 ^ s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegreeDefinitionExamples(t *testing.T) {
	// Paper Definition 2: D_e^BR has degree 2 for any e.
	for e := 2; e <= 10; e++ {
		if got := BR(e).Degree(); got != 2 {
			t.Errorf("Degree(BR(%d)) = %d, want 2", e, got)
		}
	}
	// Degenerate cases.
	if got := (Seq{}).Degree(); got != 0 {
		t.Errorf("Degree(empty) = %d", got)
	}
	if got := (Seq{0}).Degree(); got != 1 {
		t.Errorf("Degree(<0>) = %d", got)
	}
	if got := (Seq{0, 0, 0}).Degree(); got != 1 {
		t.Errorf("Degree(<000>) = %d", got)
	}
	// A perfectly periodic sequence over k links has degree k.
	if got := (Seq{0, 1, 2, 0, 1, 2, 0, 1, 2}).Degree(); got != 3 {
		t.Errorf("Degree(<012012012>) = %d, want 3", got)
	}
}

// naiveWindowStat recomputes a window's stats from scratch.
func naiveWindowStat(s Seq) WindowStat {
	counts := make(map[int]int)
	for _, l := range s {
		counts[l]++
	}
	st := WindowStat{}
	for _, c := range counts {
		st.U++
		if c > st.R {
			st.R = c
		}
	}
	return st
}

func TestSlidingStatsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		s := make(Seq, n)
		for i := range s {
			s[i] = rng.Intn(5)
		}
		for L := 1; L <= n; L++ {
			got := SlidingStats(s, L)
			if len(got) != n-L+1 {
				t.Fatalf("len(SlidingStats) = %d, want %d", len(got), n-L+1)
			}
			for i := range got {
				want := naiveWindowStat(s[i : i+L])
				if got[i] != want {
					t.Fatalf("window %d len %d of %v: got %+v want %+v", i, L, s, got[i], want)
				}
			}
		}
	}
}

func TestSlidingStatsEdgeCases(t *testing.T) {
	if got := SlidingStats(Seq{0, 1}, 0); got != nil {
		t.Error("n=0 should return nil")
	}
	if got := SlidingStats(Seq{0, 1}, 3); got != nil {
		t.Error("n>len should return nil")
	}
}

func TestPrefixSuffixStats(t *testing.T) {
	s := Seq{0, 1, 0, 2, 0, 1, 0}
	pre := PrefixStats(s, 3)
	wantPre := []WindowStat{{1, 1}, {2, 1}, {2, 2}}
	if !reflect.DeepEqual(pre, wantPre) {
		t.Errorf("PrefixStats = %v, want %v", pre, wantPre)
	}
	suf := SuffixStats(s, 3)
	wantSuf := []WindowStat{{1, 1}, {2, 1}, {2, 2}}
	if !reflect.DeepEqual(suf, wantSuf) {
		t.Errorf("SuffixStats = %v, want %v", suf, wantSuf)
	}
	// Capping beyond length returns full-length stats.
	all := PrefixStats(s, 100)
	if len(all) != len(s) {
		t.Errorf("PrefixStats capped length = %d", len(all))
	}
	if all[len(all)-1] != FullStat(s) {
		t.Errorf("last prefix stat %v != FullStat %v", all[len(all)-1], FullStat(s))
	}
}

func TestFullStat(t *testing.T) {
	s := BR(4)
	st := FullStat(s)
	if st.U != 4 {
		t.Errorf("U = %d, want 4", st.U)
	}
	if st.R != s.Alpha() {
		t.Errorf("R = %d, want α = %d", st.R, s.Alpha())
	}
}

func TestClone(t *testing.T) {
	s := Seq{1, 2, 3}
	c := s.Clone()
	c[0] = 9
	if s[0] != 1 {
		t.Error("Clone aliases the original")
	}
}
