package sequence

import "testing"

// The sequences printed in section 3.1, with their claimed α values. Our
// validation shows each printed sequence is a genuine e-sequence and that
// every claimed α equals the lower bound ceil((2^e-1)/e) — so they are
// provably optimal, not merely "minimal found".
func TestMinAlphaPaperSequences(t *testing.T) {
	claims := map[int]int{2: 2, 3: 3, 4: 4, 5: 7, 6: 11}
	for e := 2; e <= 6; e++ {
		s, err := MinAlpha(e)
		if err != nil {
			t.Fatalf("MinAlpha(%d): %v", e, err)
		}
		if err := ValidateESequence(s, e); err != nil {
			t.Errorf("e=%d: printed sequence invalid: %v", e, err)
		}
		if got := s.Alpha(); got != claims[e] {
			t.Errorf("e=%d: α = %d, paper claims %d", e, got, claims[e])
		}
		if got := s.Alpha(); got != LowerBoundAlpha(e) {
			t.Errorf("e=%d: α = %d, lower bound %d", e, got, LowerBoundAlpha(e))
		}
	}
}

func TestMinAlphaEdgeCases(t *testing.T) {
	s, err := MinAlpha(1)
	if err != nil || s.String() != "<0>" {
		t.Errorf("MinAlpha(1) = %v, %v", s, err)
	}
	if _, err := MinAlpha(7); err == nil {
		t.Error("MinAlpha(7) should be unknown")
	}
	if _, err := MinAlphaValue(9); err == nil {
		t.Error("MinAlphaValue(9) should be unknown")
	}
	v, err := MinAlphaValue(5)
	if err != nil || v != 7 {
		t.Errorf("MinAlphaValue(5) = %d, %v", v, err)
	}
}

// Our own search reproduces optimal-α sequences for the small cubes quickly.
func TestFindLowAlphaSequenceOptimal(t *testing.T) {
	for e := 1; e <= 4; e++ {
		target := LowerBoundAlpha(e)
		s, ok := FindLowAlphaSequence(e, target, 0)
		if !ok {
			t.Fatalf("e=%d: no sequence with α <= %d found", e, target)
		}
		if err := ValidateESequence(s, e); err != nil {
			t.Fatalf("e=%d: found invalid sequence: %v", e, err)
		}
		if s.Alpha() > target {
			t.Fatalf("e=%d: α = %d > target %d", e, s.Alpha(), target)
		}
	}
}

// The e=5 optimum (α=7) is harder; keep it out of -short runs.
func TestFindLowAlphaSequenceE5(t *testing.T) {
	if testing.Short() {
		t.Skip("search skipped in short mode")
	}
	s, ok := FindLowAlphaSequence(5, 7, 5_000_000)
	if !ok {
		t.Skip("budget exhausted before finding α=7 for e=5 (known-hard search)")
	}
	if err := ValidateESequence(s, 5); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if s.Alpha() > 7 {
		t.Fatalf("α = %d", s.Alpha())
	}
}

// Requesting an α below the lower bound must fail fast.
func TestFindLowAlphaSequenceInfeasible(t *testing.T) {
	if s, ok := FindLowAlphaSequence(4, LowerBoundAlpha(4)-1, 0); ok {
		t.Errorf("found impossible sequence %v", s)
	}
}

// A slack target is found almost immediately even for e=6.
func TestFindLowAlphaSequenceSlackTarget(t *testing.T) {
	s, ok := FindLowAlphaSequence(6, 16, 500_000)
	if !ok {
		t.Skip("budget exhausted (acceptable on slow machines)")
	}
	if err := ValidateESequence(s, 6); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if s.Alpha() > 16 {
		t.Fatalf("α = %d > 16", s.Alpha())
	}
}
