package sequence

import "math/rand"

// RandomESequence generates a random e-sequence: a random Hamiltonian path
// of the e-cube. It is used by property tests to check that the
// sweep-schedule construction is correct for *any* valid link-sequence
// family, not just the ones from the paper.
//
// Two generation strategies are combined:
//
//   - for small cubes (e <= randomDFSMaxDim) a budgeted randomized
//     depth-first search explores the full space of Hamiltonian paths;
//   - for larger cubes (where naive DFS can backtrack exponentially) a BR
//     path is scrambled through random hypercube automorphisms (dimension
//     permutations) followed by random Property-1 subcube permutations,
//     each application validated before being kept.
//
// Every returned sequence is validated; the function is deterministic for a
// given rng state.
func RandomESequence(e int, rng *rand.Rand) Seq {
	checkDim(e)
	if e == 0 {
		return Seq{}
	}
	if e <= randomDFSMaxDim {
		if s, ok := randomDFSSequence(e, rng, 200_000); ok {
			return s
		}
	}
	return randomScrambledSequence(e, rng)
}

// MaxRandomDim bounds the dimension for which RandomESequence stays fast.
const MaxRandomDim = 12

// randomDFSMaxDim bounds the pure-DFS strategy; beyond this the scramble
// strategy is used directly.
const randomDFSMaxDim = 5

// randomDFSSequence attempts a randomized DFS Hamiltonian path with a step
// budget, reporting failure instead of backtracking indefinitely.
func randomDFSSequence(e int, rng *rand.Rand, budget int) (Seq, bool) {
	n := 1 << uint(e)
	visited := make([]bool, n)
	path := make(Seq, 0, n-1)
	visited[0] = true
	if randomDFS(0, n-1, e, visited, &path, rng, &budget) {
		return path, true
	}
	return nil, false
}

func randomDFS(cur, remaining, e int, visited []bool, path *Seq, rng *rand.Rand, budget *int) bool {
	if remaining == 0 {
		return true
	}
	if *budget <= 0 {
		return false
	}
	*budget--
	order := rng.Perm(e)
	for _, l := range order {
		next := cur ^ (1 << uint(l))
		if visited[next] {
			continue
		}
		visited[next] = true
		*path = append(*path, l)
		if randomDFS(next, remaining-1, e, visited, path, rng, budget) {
			return true
		}
		*path = (*path)[:len(*path)-1]
		visited[next] = false
	}
	return false
}

// randomScrambledSequence derives a random Hamiltonian path from BR(e) by a
// random dimension relabelling (a hypercube automorphism, always safe)
// followed by a number of random subcube-block permutations in the style of
// the permuted-BR transformation. Each subcube permutation is validated and
// discarded if it breaks the Hamiltonian property, so the result is always a
// valid e-sequence.
func randomScrambledSequence(e int, rng *rand.Rand) Seq {
	seq, err := ApplyPermutation(BR(e), Permutation(rng.Perm(e)))
	if err != nil {
		panic("sequence: dimension permutation failed: " + err.Error())
	}
	rounds := 2 + rng.Intn(2*e)
	for r := 0; r < rounds; r++ {
		// Pick a level-k block of the BR layout and permute the links that
		// occur inside it among themselves.
		k := rng.Intn(e - 1) // level 0..e-2, block length 2^(e-k-1)-1 >= 1
		stride := 1 << uint(e-k-1)
		blockLen := stride - 1
		j := rng.Intn(1 << uint(k+1))
		from := j * stride
		to := from + blockLen

		present := make([]bool, e)
		for _, l := range seq[from:to] {
			present[l] = true
		}
		dimList := make([]int, 0, e)
		for l := 0; l < e; l++ {
			if present[l] {
				dimList = append(dimList, l)
			}
		}
		if len(dimList) < 2 {
			continue
		}
		// Build a permutation of [0,e-1] that permutes dimList onto itself.
		perm := IdentityPermutation(e)
		shuffled := append([]int(nil), dimList...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		for i, l := range dimList {
			perm[l] = shuffled[i]
		}
		candidate := seq.Clone()
		for i := from; i < to; i++ {
			candidate[i] = perm[candidate[i]]
		}
		if IsESequence(candidate, e) {
			seq = candidate
		}
	}
	return seq
}
