package httpapi_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/httpapi"
	"repro/internal/matrix"
	"repro/internal/service"
)

// newServer boots a service plus its full handler on an httptest listener.
func newServer(t *testing.T, cfg service.Config) (*service.Service, *httptest.Server) {
	t.Helper()
	svc := service.New(cfg)
	srv := httptest.NewServer(httpapi.NewHandler(svc))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

// doReq performs one request and decodes the body.
func doReq(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// wantError asserts a structured v2 error body.
func wantError(t *testing.T, code int, body []byte, wantStatus int, wantCode, wantField string) {
	t.Helper()
	if code != wantStatus {
		t.Errorf("status %d, want %d (%s)", code, wantStatus, body)
	}
	var e client.Error
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body is not structured: %s", body)
	}
	if e.Code != wantCode {
		t.Errorf("code %q, want %q (%s)", e.Code, wantCode, body)
	}
	if wantField != "" && e.Field != wantField {
		t.Errorf("field %q, want %q (%s)", e.Field, wantField, body)
	}
	if e.Message == "" {
		t.Errorf("error body has no message: %s", body)
	}
}

// TestV2StructuredErrors: every v2 failure path answers with a
// {code, message, field} body and a conventional status.
func TestV2StructuredErrors(t *testing.T) {
	_, srv := newServer(t, service.Config{Workers: 1})

	// Undecodable JSON.
	code, body := doReq(t, http.MethodPost, srv.URL+"/api/v2/jobs", nil)
	_ = code
	resp, err := http.Post(srv.URL+"/api/v2/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	wantError(t, resp.StatusCode, raw, http.StatusBadRequest, client.CodeBadRequest, "")

	// Spec validation, with the offending field named.
	code, body = doReq(t, http.MethodPost, srv.URL+"/api/v2/jobs", client.Spec{Dim: 1})
	wantError(t, code, body, http.StatusBadRequest, client.CodeInvalidSpec, "matrix")
	code, body = doReq(t, http.MethodPost, srv.URL+"/api/v2/jobs",
		client.Spec{Random: &client.RandomSpec{N: 16, Seed: 1}, Dim: 1, Backend: "gpu"})
	wantError(t, code, body, http.StatusBadRequest, client.CodeInvalidSpec, "backend")

	// Unknown jobs, on every per-job route.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/api/v2/jobs/job-999"},
		{http.MethodDelete, "/api/v2/jobs/job-999"},
		{http.MethodGet, "/api/v2/jobs/job-999/result"},
		{http.MethodGet, "/api/v2/jobs/job-999/events"},
	} {
		code, body = doReq(t, probe.method, srv.URL+probe.path, nil)
		wantError(t, code, body, http.StatusNotFound, client.CodeNotFound, "")
	}

	// Batch failures name the offending entry.
	code, body = doReq(t, http.MethodPost, srv.URL+"/api/v2/batch", map[string]any{
		"jobs": []client.Spec{
			{Random: &client.RandomSpec{N: 16, Seed: 1}, Dim: 1},
			{Random: &client.RandomSpec{N: 16, Seed: 2}, Dim: -3},
		},
	})
	wantError(t, code, body, http.StatusBadRequest, client.CodeInvalidSpec, "jobs[1].dim")
	code, body = doReq(t, http.MethodPost, srv.URL+"/api/v2/batch", map[string]any{"jobs": []client.Spec{}})
	wantError(t, code, body, http.StatusBadRequest, client.CodeBadRequest, "jobs")

	// Listing rejects malformed paging parameters.
	code, body = doReq(t, http.MethodGet, srv.URL+"/api/v2/jobs?cursor=zap", nil)
	wantError(t, code, body, http.StatusBadRequest, client.CodeBadRequest, "cursor")
	code, body = doReq(t, http.MethodGet, srv.URL+"/api/v2/jobs?limit=many", nil)
	wantError(t, code, body, http.StatusBadRequest, client.CodeBadRequest, "limit")
}

// TestV2ResultStates: result retrieval distinguishes pending, canceled and
// done with typed codes.
func TestV2ResultStates(t *testing.T) {
	svc, srv := newServer(t, service.Config{Workers: 1})

	// Occupy the worker so the probe job stays queued.
	blocker, err := svc.Submit(context.Background(), service.JobSpec{
		Matrix: matrix.RandomSymmetric(384, rand.New(rand.NewSource(1))), Dim: 2, Backend: service.BackendEmulated,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Cancel()

	code, body := doReq(t, http.MethodPost, srv.URL+"/api/v2/jobs",
		client.Spec{Random: &client.RandomSpec{N: 16, Seed: 5}, Dim: 1})
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", code, body)
	}
	var st client.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	code, body = doReq(t, http.MethodGet, srv.URL+"/api/v2/jobs/"+st.ID+"/result", nil)
	wantError(t, code, body, http.StatusConflict, client.CodeNotFinished, "")

	code, body = doReq(t, http.MethodDelete, srv.URL+"/api/v2/jobs/"+st.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel returned %d: %s", code, body)
	}
	code, body = doReq(t, http.MethodGet, srv.URL+"/api/v2/jobs/"+st.ID+"/result", nil)
	wantError(t, code, body, http.StatusConflict, client.CodeJobCanceled, "")
}

// TestV2PaginationEdges: the HTTP listing serves empty services, empty
// past-end pages, and exact-limit walks.
func TestV2PaginationEdges(t *testing.T) {
	svc, srv := newServer(t, service.Config{Workers: 2})

	// Empty service: an empty page with no cursor, not an error.
	code, body := doReq(t, http.MethodGet, srv.URL+"/api/v2/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("empty list returned %d", code)
	}
	var page client.JobPage
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 0 || page.NextCursor != "" {
		t.Errorf("empty service page: %+v", page)
	}

	var jobs []*service.Job
	for i := 0; i < 4; i++ {
		j, err := svc.Submit(context.Background(), service.JobSpec{
			Matrix: matrix.RandomSymmetric(16, rand.New(rand.NewSource(int64(i)))), Dim: 1, CostOnly: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := service.WaitAll(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}

	// limit == remaining: one full page, then an empty one via the cursor.
	code, body = doReq(t, http.MethodGet, srv.URL+"/api/v2/jobs?limit=4", nil)
	if code != http.StatusOK {
		t.Fatalf("list returned %d", code)
	}
	page = client.JobPage{}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 4 {
		t.Fatalf("page has %d jobs", len(page.Jobs))
	}
	if page.NextCursor != "" {
		// An exact-limit page may advertise a cursor; following it must
		// yield an empty terminal page.
		code, body = doReq(t, http.MethodGet, srv.URL+"/api/v2/jobs?cursor="+page.NextCursor, nil)
		if code != http.StatusOK {
			t.Fatalf("follow-up page returned %d", code)
		}
		page = client.JobPage{}
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Jobs) != 0 || page.NextCursor != "" {
			t.Errorf("terminal page: %+v", page)
		}
	}

	// Past-end cursor.
	code, body = doReq(t, http.MethodGet, srv.URL+"/api/v2/jobs?cursor=job-4000", nil)
	if code != http.StatusOK {
		t.Fatalf("past-end returned %d", code)
	}
	page = client.JobPage{}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 0 || page.NextCursor != "" {
		t.Errorf("past-end page: %+v", page)
	}
}

// TestV2EventStreamTeardown: a consumer that disconnects mid-stream
// releases its subscription promptly — the job is not left fanning out to
// a dead connection.
func TestV2EventStreamTeardown(t *testing.T) {
	svc, srv := newServer(t, service.Config{Workers: 1})
	// A long emulated solve keeps the stream alive while we disconnect.
	j, err := svc.Submit(context.Background(), service.JobSpec{
		Matrix: matrix.RandomSymmetric(384, rand.New(rand.NewSource(9))), Dim: 2, Backend: service.BackendEmulated,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Cancel()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/api/v2/jobs/"+j.ID()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events returned %d", resp.StatusCode)
	}
	// Read the first line (the queued event) to prove the stream is live.
	rd := bufio.NewReader(resp.Body)
	line, err := rd.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var ev client.Event
	if err := json.Unmarshal(line, &ev); err != nil {
		t.Fatalf("first stream line is not an event: %s", line)
	}
	if ev.Type != client.EventQueued {
		t.Errorf("first event %s, want queued", ev.Type)
	}
	if n := j.Subscribers(); n != 1 {
		t.Fatalf("%d subscribers while streaming, want 1", n)
	}

	// Disconnect; the handler must notice and drop the subscription.
	cancel()
	deadline := time.Now().Add(10 * time.Second)
	for j.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscription not torn down after disconnect (%d left)", j.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestV2SSEFormat: with Accept: text/event-stream the stream switches to
// SSE framing (event:/data: records) and still ends at the terminal
// event.
func TestV2SSEFormat(t *testing.T) {
	svc, srv := newServer(t, service.Config{Workers: 1})
	j, err := svc.Submit(context.Background(), service.JobSpec{
		Matrix: matrix.RandomSymmetric(16, rand.New(rand.NewSource(3))), Dim: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/api/v2/jobs/"+j.ID()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body) // terminal event closes the stream
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"event: queued\n", "event: started\n", "event: sweep\n", "event: done\n", "data: {"} {
		if !strings.Contains(text, want) {
			t.Errorf("SSE stream lacks %q:\n%s", want, text)
		}
	}
}

// TestV1ShimStillServes: the whole v1 surface keeps working underneath
// v2, byte format unchanged.
func TestV1ShimStillServes(t *testing.T) {
	_, srv := newServer(t, service.Config{Workers: 1})

	code, body := doReq(t, http.MethodPost, srv.URL+"/api/v1/jobs", service.JobRequest{
		Random: &service.RandomSpec{N: 16, Seed: 8}, Dim: 1,
	})
	if code != http.StatusAccepted {
		t.Fatalf("v1 submit returned %d: %s", code, body)
	}
	var st service.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("v1 submit returned no job ID")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body = doReq(t, http.MethodGet, srv.URL+"/api/v1/jobs/"+st.ID, nil)
		if code != http.StatusOK {
			t.Fatalf("v1 status returned %d", code)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == service.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("v1 job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// v1 error bodies keep their original (unstructured) shape.
	code, body = doReq(t, http.MethodGet, srv.URL+"/api/v1/jobs/job-999", nil)
	if code != http.StatusNotFound {
		t.Fatalf("v1 unknown job returned %d", code)
	}
	var v1err map[string]string
	if err := json.Unmarshal(body, &v1err); err != nil || v1err["error"] == "" {
		t.Errorf("v1 error body changed shape: %s", body)
	}
	if code, _ := doReq(t, http.MethodGet, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz returned %d", code)
	}
	// A v1-submitted job is visible through v2, and vice versa — one
	// service behind both surfaces.
	code, body = doReq(t, http.MethodGet, srv.URL+"/api/v2/jobs/"+st.ID, nil)
	if code != http.StatusOK {
		t.Errorf("v2 status of v1 job returned %d", code)
	}
	var fromFmt client.Status
	if err := json.Unmarshal(body, &fromFmt); err != nil || fromFmt.ID != st.ID {
		t.Errorf("v2 view of v1 job: %s", body)
	}
}
