// Package httpapi mounts the versioned HTTP surface of the batch-solve
// service. /api/v2 is the wire protocol of the public client package —
// its request and response bodies ARE the client package's exported types,
// so the protocol has exactly one definition — and /api/v1 stays mounted
// as a thin compatibility shim (the unversioned handler the service
// package has always provided).
//
// The v2 surface:
//
//	POST   /api/v2/jobs             submit one job (idempotency_key aware)
//	POST   /api/v2/batch            submit many jobs in one request
//	GET    /api/v2/jobs             list jobs, paginated (?cursor=&limit=)
//	GET    /api/v2/jobs/{id}        one job's status
//	DELETE /api/v2/jobs/{id}        cancel a job
//	GET    /api/v2/jobs/{id}/result the finished job's result
//	GET    /api/v2/jobs/{id}/events progress stream (NDJSON, or SSE when
//	                                Accept: text/event-stream)
//	GET    /api/v2/metrics          service metrics
//	GET    /metrics                 the same metrics, Prometheus text format
//
// Errors are structured bodies — client.Error's JSON shape
// ({code, message, field}) — with conventional status codes. Event streams
// replay the job's history, then follow live events, and end right after
// the terminal event; a disconnecting consumer tears its subscription down
// immediately.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/client"
	"repro/internal/service"
)

// maxRequestBody bounds submit payloads, matching the v1 limit.
const maxRequestBody = 512 << 20

// NewHandler returns the service's full HTTP surface: /api/v2, the /api/v1
// shim, and /healthz.
func NewHandler(s *service.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v2/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec client.Spec
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&spec); err != nil {
			writeError(w, &client.Error{Code: client.CodeBadRequest, Message: "decode request: " + err.Error()})
			return
		}
		st, err := submit(s, spec)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("POST /api/v2/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Jobs []client.Spec `json:"jobs"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
			writeError(w, &client.Error{Code: client.CodeBadRequest, Message: "decode request: " + err.Error()})
			return
		}
		if len(req.Jobs) == 0 {
			writeError(w, &client.Error{Code: client.CodeBadRequest, Field: "jobs", Message: "batch has no jobs"})
			return
		}
		out := make([]client.Status, 0, len(req.Jobs))
		for i, spec := range req.Jobs {
			st, err := submit(s, spec)
			if err != nil {
				// Fail fast, naming the offending entry; jobs already
				// accepted keep running (the client can list or resubmit
				// idempotently).
				var ce *client.Error
				if errors.As(err, &ce) && ce.Field != "" {
					ce.Field = fmt.Sprintf("jobs[%d].%s", i, ce.Field)
				} else if errors.As(err, &ce) {
					ce.Field = fmt.Sprintf("jobs[%d]", i)
				}
				writeError(w, err)
				return
			}
			out = append(out, st)
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"jobs": out})
	})
	mux.HandleFunc("GET /api/v2/jobs", func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				writeError(w, &client.Error{Code: client.CodeBadRequest, Field: "limit", Message: "malformed limit " + strconv.Quote(v)})
				return
			}
			limit = n
		}
		jobs, next, err := s.JobsPage(r.URL.Query().Get("cursor"), limit)
		if err != nil {
			writeError(w, client.FromServiceError(err))
			return
		}
		page := client.JobPage{Jobs: make([]client.Status, len(jobs)), NextCursor: next}
		for i, j := range jobs {
			page.Jobs[i] = client.FromServiceStatus(j.Status())
		}
		writeJSON(w, http.StatusOK, page)
	})
	mux.HandleFunc("GET /api/v2/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, notFound(r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, client.FromServiceStatus(j.Status()))
	})
	mux.HandleFunc("DELETE /api/v2/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, notFound(r.PathValue("id")))
			return
		}
		j.Cancel()
		writeJSON(w, http.StatusOK, client.FromServiceStatus(j.Status()))
	})
	mux.HandleFunc("GET /api/v2/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, notFound(r.PathValue("id")))
			return
		}
		switch j.State() {
		case service.StateDone, service.StateFailed, service.StateCanceled:
		default:
			writeError(w, &client.Error{Code: client.CodeNotFinished,
				Message: fmt.Sprintf("job %s is %s", j.ID(), j.State())})
			return
		}
		res, err := j.Result()
		if err != nil {
			code := client.CodeJobFailed
			if j.State() == service.StateCanceled {
				code = client.CodeJobCanceled
			}
			writeError(w, &client.Error{Code: code, Message: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, client.FromServiceResult(res))
	})
	mux.HandleFunc("GET /api/v2/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, notFound(r.PathValue("id")))
			return
		}
		streamEvents(w, r, j)
	})
	mux.HandleFunc("GET /api/v2/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, client.FromServiceSnapshot(s.Metrics()))
	})
	// Prometheus text-format exposition of the same snapshot (see prom.go).
	mux.HandleFunc("GET /metrics", promHandler(s))
	// Everything else — the whole /api/v1 surface and /healthz — falls
	// through to the v1 handler, which keeps serving its original wire
	// format unchanged.
	mux.Handle("/", service.NewHandler(s))
	return mux
}

// submit runs one spec through idempotent submission and shapes the
// response status.
func submit(s *service.Service, spec client.Spec) (client.Status, error) {
	jspec, err := client.ServiceRequest(spec).Spec()
	if err != nil {
		return client.Status{}, client.FromServiceError(err)
	}
	// Jobs outlive the submitting connection: cancellation goes through
	// DELETE, exactly as in v1.
	j, reused, err := s.SubmitKeyed(context.Background(), spec.IdempotencyKey, jspec)
	if err != nil {
		return client.Status{}, client.FromServiceError(err)
	}
	st := client.FromServiceStatus(j.Status())
	st.Reused = reused
	return st, nil
}

// streamEvents serves one job's progress stream until the terminal event
// or client disconnect: NDJSON by default, SSE when the client asks for
// text/event-stream. Subscription teardown is immediate on disconnect —
// the request context's Done fires, the subscriber detaches, and the
// job's fan-out never blocks on the dead connection either way.
func streamEvents(w http.ResponseWriter, r *http.Request, j *service.Job) {
	// Compound Accept values ("text/event-stream, */*", q-params) still
	// mean the consumer wants SSE framing.
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	events, stop := j.Subscribe(0)
	defer stop()
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return // terminal event delivered; stream complete
			}
			if sse {
				fmt.Fprintf(w, "event: %s\ndata: ", ev.Type)
			}
			if err := enc.Encode(client.FromServiceEvent(ev)); err != nil {
				return
			}
			if sse {
				fmt.Fprint(w, "\n")
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func notFound(id string) *client.Error {
	return &client.Error{Code: client.CodeNotFound, Message: fmt.Sprintf("unknown job %q", id)}
}

// statusFor maps an error code to its HTTP status.
func statusFor(code string) int {
	switch code {
	case client.CodeBadRequest, client.CodeInvalidSpec:
		return http.StatusBadRequest
	case client.CodeNotFound:
		return http.StatusNotFound
	case client.CodeNotFinished, client.CodeJobFailed, client.CodeJobCanceled:
		return http.StatusConflict
	case client.CodeQuotaExceeded, client.CodeRateLimited:
		return http.StatusTooManyRequests
	case client.CodeQueueFull, client.CodeClosed:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError serializes any error as a structured v2 error body.
func writeError(w http.ResponseWriter, err error) {
	var ce *client.Error
	if !errors.As(err, &ce) {
		ce = &client.Error{Code: client.CodeInternal, Message: err.Error()}
	}
	writeJSON(w, statusFor(ce.Code), ce)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
