package httpapi

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/service"
)

// Prometheus text-format (0.0.4) exposition of the service's metrics
// snapshot: every Snapshot counter and gauge, plus per-outcome wall-time
// histograms with cumulative `le` buckets. The endpoint renders one
// consistent service.Snapshot per scrape, so the exported values always
// agree with GET /api/v2/metrics taken at the same instant.

// promHandler serves GET /metrics.
func promHandler(s *service.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(renderProm(s.Metrics())))
	}
}

// renderProm formats one metrics snapshot as Prometheus exposition text.
func renderProm(m service.Snapshot) string {
	var b strings.Builder

	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, promFloat(v))
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, promFloat(v))
	}

	counter("jacobi_jobs_submitted_total", "Jobs accepted past admission this boot.", float64(m.Submitted))
	counter("jacobi_jobs_completed_total", "Jobs finished done this boot.", float64(m.Completed))
	counter("jacobi_jobs_failed_total", "Jobs finished failed this boot.", float64(m.Failed))
	counter("jacobi_jobs_canceled_total", "Jobs finished canceled this boot (includes shed jobs).", float64(m.Canceled))

	fmt.Fprintf(&b, "# HELP jacobi_jobs_recovered_total Terminal jobs restored from the durable journal at boot, by outcome.\n# TYPE jacobi_jobs_recovered_total counter\n")
	fmt.Fprintf(&b, "jacobi_jobs_recovered_total{outcome=\"done\"} %d\n", m.RecoveredDone)
	fmt.Fprintf(&b, "jacobi_jobs_recovered_total{outcome=\"failed\"} %d\n", m.RecoveredFailed)
	fmt.Fprintf(&b, "jacobi_jobs_recovered_total{outcome=\"canceled\"} %d\n", m.RecoveredCanceled)

	fmt.Fprintf(&b, "# HELP jacobi_admission_rejected_total Submissions refused at admission, by reason.\n# TYPE jacobi_admission_rejected_total counter\n")
	fmt.Fprintf(&b, "jacobi_admission_rejected_total{reason=\"quota\"} %d\n", m.QuotaRejected)
	fmt.Fprintf(&b, "jacobi_admission_rejected_total{reason=\"rate_limited\"} %d\n", m.RateLimited)
	fmt.Fprintf(&b, "jacobi_admission_rejected_total{reason=\"queue_full\"} %d\n", m.QueueFullRejected)

	counter("jacobi_jobs_shed_total", "Queued jobs canceled by priority-aware load shedding.", float64(m.ShedJobs))

	gauge("jacobi_workers", "Solve-pool size.", float64(m.Workers))
	gauge("jacobi_uptime_seconds", "Seconds since this service process started.", m.UptimeSec)
	gauge("jacobi_queue_depth", "Jobs queued and not yet running.", float64(m.QueueDepth))
	gauge("jacobi_inflight_jobs", "Jobs currently being solved.", float64(m.InFlight))

	if len(m.TenantQueued) > 0 {
		fmt.Fprintf(&b, "# HELP jacobi_tenant_queued Queued jobs per tenant.\n# TYPE jacobi_tenant_queued gauge\n")
		tenants := make([]string, 0, len(m.TenantQueued))
		for t := range m.TenantQueued {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		for _, t := range tenants {
			// Go's %q escaping (backslash, quote, newline) matches the text
			// format's label-value escaping.
			fmt.Fprintf(&b, "jacobi_tenant_queued{tenant=%q} %d\n", t, m.TenantQueued[t])
		}
	}

	counter("jacobi_cache_hits_total", "Result-cache hits.", float64(m.CacheHits))
	counter("jacobi_cache_evictions_total", "Result-cache entries dropped by the LRU budgets.", float64(m.CacheEvictions))
	gauge("jacobi_cache_entries", "Live result-cache entries.", float64(m.CacheSize))
	gauge("jacobi_cache_bytes", "Estimated result-cache payload bytes.", float64(m.CacheBytes))

	counter("jacobi_lanes_dispatched_total", "Batched-lane runs dispatched.", float64(m.LanesDispatched))
	counter("jacobi_lane_jobs_total", "Jobs carried by dispatched lanes.", float64(m.LaneJobs))
	gauge("jacobi_lane_fill_ratio", "Carried lane jobs over dispatched lane capacity.", m.LaneFillRatio)

	counter("jacobi_schedule_cache_builds_total", "Sweep-schedule cache builds.", float64(m.ScheduleCache.Builds))
	counter("jacobi_schedule_cache_hits_total", "Sweep-schedule cache hits.", float64(m.ScheduleCache.Hits))

	gauge("jacobi_tuned_schedules", "Tuned execution plans installed in the registry.", float64(m.TunedSchedules))
	counter("jacobi_tuned_hits_total", "Tuned-registry lookups that found a plan.", float64(m.TunedHits))
	counter("jacobi_tuned_misses_total", "Tuned-registry lookups that found nothing.", float64(m.TunedMisses))
	counter("jacobi_tuned_jobs_total", "Fresh completions executed under a tuned plan.", float64(m.TunedJobs))
	counter("jacobi_tuned_makespan_gain_total", "Analytic makespan saved by tuned plans versus the unpipelined baseline, in machine time units.", m.TunedMakespanGain)
	if len(m.TunedShapeHits) > 0 || len(m.TunedShapeMisses) > 0 {
		fmt.Fprintf(&b, "# HELP jacobi_tuned_lookups_total Tuned-registry lookups by job shape and outcome.\n# TYPE jacobi_tuned_lookups_total counter\n")
		for _, series := range []struct {
			outcome string
			by      map[string]int64
		}{{"hit", m.TunedShapeHits}, {"miss", m.TunedShapeMisses}} {
			shapes := make([]string, 0, len(series.by))
			for k := range series.by {
				shapes = append(shapes, k)
			}
			sort.Strings(shapes)
			for _, k := range shapes {
				fmt.Fprintf(&b, "jacobi_tuned_lookups_total{shape=%q,outcome=%q} %d\n", k, series.outcome, series.by[k])
			}
		}
	}

	counter("jacobi_total_modeled_makespan", "Aggregate modeled virtual-time makespan of executed work.", m.TotalModeledMakespan)
	gauge("jacobi_jobs_per_sec", "This-boot completed jobs over this-boot uptime.", m.JobsPerSec)

	fmt.Fprintf(&b, "# HELP jacobi_job_wall_time_milliseconds Job wall time by terminal outcome, in milliseconds.\n# TYPE jacobi_job_wall_time_milliseconds histogram\n")
	outcomes := make([]string, 0, len(m.Latency))
	for o := range m.Latency {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		st := m.Latency[o]
		for i, le := range st.BucketMs {
			fmt.Fprintf(&b, "jacobi_job_wall_time_milliseconds_bucket{outcome=%q,le=%q} %d\n", o, promFloat(le), st.BucketCounts[i])
		}
		fmt.Fprintf(&b, "jacobi_job_wall_time_milliseconds_bucket{outcome=%q,le=\"+Inf\"} %d\n", o, st.Count)
		fmt.Fprintf(&b, "jacobi_job_wall_time_milliseconds_sum{outcome=%q} %s\n", o, promFloat(st.SumMs))
		fmt.Fprintf(&b, "jacobi_job_wall_time_milliseconds_count{outcome=%q} %d\n", o, st.Count)
	}

	return b.String()
}

// promFloat formats a sample value: integral values render without an
// exponent or trailing zeros, everything else as shortest round-trip.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
