package httpapi_test

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/client"
	"repro/internal/service"
)

// parseProm reads Prometheus text-format exposition into a sample map
// keyed by `name` or `name{labels}`, failing on any malformed line.
func parseProm(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed exposition line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("malformed sample value in %q: %v", line, err)
		}
		samples[key] = f
	}
	return samples
}

// TestPromMetricsAgreeWithSnapshot is the acceptance criterion of the
// /metrics endpoint: under concurrent load every scrape parses as valid
// exposition text, and at quiescence the exported samples agree exactly
// with the JSON snapshot the same service reports.
func TestPromMetricsAgreeWithSnapshot(t *testing.T) {
	svc, srv := newServer(t, service.Config{Workers: 4, ShedHighWater: 64})
	c, err := client.NewHTTP(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Concurrent submitters (three tenants, a repeated spec for cache
	// hits) race the scrapers below.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				seed := int64(i % 3) // repeats within and across submitters
				h, err := c.Submit(ctx, client.Spec{
					Random: &client.RandomSpec{N: 16, Seed: seed}, Dim: 1,
					Tenant: fmt.Sprintf("tenant-%d", w%3),
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := h.Wait(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	scrape := func() map[string]float64 {
		status, body := doReq(t, "GET", srv.URL+"/metrics", nil)
		if status != 200 {
			t.Fatalf("GET /metrics: status %d", status)
		}
		return parseProm(t, string(body))
	}
	for i := 0; i < 5; i++ {
		mid := scrape()
		// Mid-load sanity: the counter exists and never exceeds the total
		// offered load.
		if n := mid["jacobi_jobs_submitted_total"]; n < 0 || n > 40 {
			t.Fatalf("mid-load submitted_total = %v", n)
		}
	}
	wg.Wait()

	// Quiescent: exported samples must agree with the snapshot exactly.
	got := scrape()
	snap := svc.Metrics()
	want := map[string]float64{
		"jacobi_jobs_submitted_total":                       float64(snap.Submitted),
		"jacobi_jobs_completed_total":                       float64(snap.Completed),
		"jacobi_jobs_failed_total":                          float64(snap.Failed),
		"jacobi_jobs_canceled_total":                        float64(snap.Canceled),
		"jacobi_jobs_shed_total":                            float64(snap.ShedJobs),
		"jacobi_admission_rejected_total{reason=\"quota\"}": float64(snap.QuotaRejected),
		"jacobi_queue_depth":                                float64(snap.QueueDepth),
		"jacobi_inflight_jobs":                              float64(snap.InFlight),
		"jacobi_workers":                                    float64(snap.Workers),
		"jacobi_cache_hits_total":                           float64(snap.CacheHits),
		"jacobi_jobs_recovered_total{outcome=\"done\"}":     float64(snap.RecoveredDone),
	}
	for key, v := range want {
		if got[key] != v {
			t.Errorf("%s = %v, want %v (snapshot)", key, got[key], v)
		}
	}
	if snap.Submitted != 40 || snap.Completed != 40 {
		t.Fatalf("load did not complete: submitted=%d completed=%d", snap.Submitted, snap.Completed)
	}

	// Histogram invariants: the done-outcome count matches the snapshot,
	// buckets are cumulative and the +Inf bucket equals the count.
	done := snap.Latency["done"]
	if got[`jacobi_job_wall_time_milliseconds_count{outcome="done"}`] != float64(done.Count) {
		t.Errorf("histogram count %v, want %d", got[`jacobi_job_wall_time_milliseconds_count{outcome="done"}`], done.Count)
	}
	if got[`jacobi_job_wall_time_milliseconds_bucket{outcome="done",le="+Inf"}`] != float64(done.Count) {
		t.Error("+Inf bucket != observation count")
	}
	prev := 0.0
	for i, le := range done.BucketMs {
		key := fmt.Sprintf(`jacobi_job_wall_time_milliseconds_bucket{outcome="done",le=%q}`, trimFloat(le))
		cur, ok := got[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if cur < prev {
			t.Fatalf("bucket %s not cumulative: %v < %v", key, cur, prev)
		}
		if cur != float64(done.BucketCounts[i]) {
			t.Errorf("bucket %s = %v, want %d", key, cur, done.BucketCounts[i])
		}
		prev = cur
	}
}

// trimFloat matches promFloat's rendering of bucket bounds.
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
