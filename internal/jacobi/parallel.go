package jacobi

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/ordering"
)

// flopsPerRotationPerRow approximates the floating-point work of one column
// rotation per matrix row: three dot products over A (6 flops/row for
// α, β, γ) and the 2x2 updates of both A and U columns (8 flops/row).
const flopsPerRotationPerRow = 14

// ParallelConfig configures the distributed solvers.
type ParallelConfig struct {
	// Family is the Jacobi ordering to execute.
	Family ordering.Family
	// Options are the numerical options (tolerance, criterion, max sweeps).
	Options Options
	// Ports, Ts, Tw, Tc parameterize the emulated machine's cost model.
	Ports machine.PortModel
	Ts    float64
	Tw    float64
	Tc    float64
	// FixedSweeps, when positive, runs exactly that many sweeps with no
	// convergence reduction — used when comparing measured virtual time
	// against the analytic cost model, which does not include the
	// convergence allreduce.
	FixedSweeps int
	// PipelineQ selects the pipelining degree for SolveParallelPipelined:
	// 0 picks the cost-model optimum per exchange phase; a positive value
	// forces that degree (capped by block granularity).
	PipelineQ int
	// Trace, when non-nil, receives every communication event of the
	// emulated machine (see the trace package).
	Trace func(machine.Event)
}

// machineConfig builds the emulated machine's configuration from the solver
// configuration.
func (cfg ParallelConfig) machineConfig(d int) machine.Config {
	return machine.Config{
		Dim:     d,
		Ports:   cfg.Ports,
		Ts:      cfg.Ts,
		Tw:      cfg.Tw,
		Tc:      cfg.Tc,
		OnEvent: cfg.Trace,
	}
}

// nodeOutcome is what each node reports back after a run.
type nodeOutcome struct {
	blocks    [2]*Block
	sweeps    int
	converged bool
	rotations int
	finalRel  float64
}

// SolveParallel runs the one-sided Jacobi method distributed over the
// 2^d-node emulated hypercube, one goroutine per node, exchanging real
// column blocks through the machine's channels according to the ordering's
// sweep schedule. Rotations are identical to SolveSchedule's (disjoint
// columns across nodes within a step), so with the MaxRelCriterion the two
// produce bit-identical results; tests assert this.
func SolveParallel(a *matrix.Dense, d int, cfg ParallelConfig) (*EigenResult, *machine.RunStats, error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("jacobi: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	if cfg.Family == nil {
		cfg.Family = ordering.NewBRFamily()
	}
	opts := cfg.Options.withDefaults()
	sw, err := ordering.BuildSweep(d, cfg.Family)
	if err != nil {
		return nil, nil, err
	}
	blocks, err := BuildBlocks(a, d)
	if err != nil {
		return nil, nil, err
	}
	mach, err := machine.New(cfg.machineConfig(d))
	if err != nil {
		return nil, nil, err
	}
	m := a.Rows
	traceGram := a.FrobeniusNorm()
	traceGram *= traceGram
	outcomes := make([]nodeOutcome, mach.Nodes())

	program := func(ctx *machine.NodeCtx) error {
		p := ctx.ID()
		slotA, slotB := blocks[2*p], blocks[2*p+1]
		out := &outcomes[p]
		for sweep := 0; ; sweep++ {
			var conv ConvTracker
			PairWithin(slotA, &conv)
			PairWithin(slotB, &conv)
			ctx.Compute(pairFlops(m, within(slotA)+within(slotB)))
			for step := 0; step < sw.Steps(); step++ {
				PairCross(slotA, slotB, &conv)
				ctx.Compute(pairFlops(m, slotA.NumCols()*slotB.NumCols()))
				if step < len(sw.Transitions) {
					tr := sw.Transitions[step]
					phys := ordering.SweepLink(tr.Link, sweep, d)
					var err error
					slotA, slotB, err = transitionExchange(ctx, tr.Kind, phys, slotA, slotB, m)
					if err != nil {
						return fmt.Errorf("sweep %d step %d: %w", sweep, step, err)
					}
				}
			}
			out.sweeps = sweep + 1
			out.rotations += conv.Rotations
			done, global, err := sweepDecision(ctx, conv, opts, traceGram, cfg.FixedSweeps, sweep)
			if err != nil {
				return err
			}
			out.finalRel = global.MaxRel
			if done.converged {
				out.converged = true
			}
			if done.stop {
				break
			}
		}
		out.blocks = [2]*Block{slotA, slotB}
		return nil
	}

	stats, err := mach.Run(program)
	if err != nil {
		return nil, nil, err
	}

	// Gather the final block placement and extract eigenpairs.
	w := matrix.NewDense(m, m)
	u := matrix.NewDense(m, m)
	res := &EigenResult{
		Sweeps:      outcomes[0].sweeps,
		Converged:   outcomes[0].converged,
		FinalMaxRel: outcomes[0].finalRel,
	}
	for _, out := range outcomes {
		res.Rotations += out.rotations
		for _, b := range out.blocks {
			if b == nil {
				return nil, nil, fmt.Errorf("jacobi: node finished without blocks")
			}
			for k, c := range b.Cols {
				w.SetCol(c, b.A[k])
				u.SetCol(c, b.U[k])
			}
		}
	}
	finishEigen(a, w, u, res)
	return res, stats, nil
}

// within returns the number of intra-block pairs of b.
func within(b *Block) int {
	n := b.NumCols()
	return n * (n - 1) / 2
}

// pairFlops returns the modeled flop count of `pairs` column rotations on
// height-m columns.
func pairFlops(m, pairs int) float64 {
	return float64(flopsPerRotationPerRow) * float64(m) * float64(pairs)
}

// transitionExchange performs one sweep transition for a node, returning the
// new (slotA, slotB). Exchange and Last transitions swap the moving block;
// Division regroups per ordering.DivisionSend and re-designates the kept
// block as stationary and the received one as moving.
func transitionExchange(ctx *machine.NodeCtx, kind ordering.TransKind, physLink int, slotA, slotB *Block, m int) (*Block, *Block, error) {
	switch kind {
	case ordering.ExchangeTrans, ordering.LastTrans:
		got, err := ctx.Exchange(physLink, EncodeBlock(slotB, m))
		if err != nil {
			return nil, nil, err
		}
		nb, err := DecodeBlock(got, m)
		if err != nil {
			return nil, nil, err
		}
		return slotA, nb, nil
	case ordering.DivisionTrans:
		var payload []float64
		if ordering.DivisionSend(ctx.ID(), physLink) {
			payload = EncodeBlock(slotA, m)
			got, err := ctx.Exchange(physLink, payload)
			if err != nil {
				return nil, nil, err
			}
			nb, err := DecodeBlock(got, m)
			if err != nil {
				return nil, nil, err
			}
			// Kept moving block becomes the new stationary one.
			return slotB, nb, nil
		}
		payload = EncodeBlock(slotB, m)
		got, err := ctx.Exchange(physLink, payload)
		if err != nil {
			return nil, nil, err
		}
		nb, err := DecodeBlock(got, m)
		if err != nil {
			return nil, nil, err
		}
		return slotA, nb, nil
	default:
		return nil, nil, fmt.Errorf("jacobi: unknown transition kind %v", kind)
	}
}

// sweepOutcome reports a sweep-end decision.
type sweepOutcome struct {
	stop      bool
	converged bool
}

// sweepDecision combines every node's convergence tracker (unless
// FixedSweeps is set) and decides whether to stop. All nodes reach the same
// decision: the reductions are deterministic.
func sweepDecision(ctx *machine.NodeCtx, conv ConvTracker, opts Options, traceGram float64, fixedSweeps, sweep int) (sweepOutcome, ConvTracker, error) {
	if fixedSweeps > 0 {
		return sweepOutcome{stop: sweep+1 >= fixedSweeps}, conv, nil
	}
	maxes, err := ctx.AllReduceMax([]float64{conv.MaxRel})
	if err != nil {
		return sweepOutcome{}, conv, err
	}
	sums, err := ctx.AllReduceSum([]float64{conv.OffSq, float64(conv.Rotations)})
	if err != nil {
		return sweepOutcome{}, conv, err
	}
	global := ConvTracker{MaxRel: maxes[0], OffSq: sums[0], Rotations: int(math.Round(sums[1]))}
	if opts.converged(global, traceGram) {
		return sweepOutcome{stop: true, converged: true}, global, nil
	}
	if sweep+1 >= opts.MaxSweeps {
		return sweepOutcome{stop: true}, global, nil
	}
	return sweepOutcome{}, global, nil
}
