package jacobi

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/ordering"
)

// ParallelConfig configures the distributed solvers.
type ParallelConfig struct {
	// Family is the Jacobi ordering to execute.
	Family ordering.Family
	// Options are the numerical options (tolerance, criterion, max sweeps).
	Options Options
	// Ports, Ts, Tw, Tc parameterize the emulated machine's cost model (and
	// the analytic backend's clock).
	Ports machine.PortModel
	Ts    float64
	Tw    float64
	Tc    float64
	// FixedSweeps, when positive, runs exactly that many sweeps with no
	// convergence reduction — used when comparing measured virtual time
	// against the analytic cost model, which does not include the
	// convergence allreduce.
	FixedSweeps int
	// PipelineQ selects the pipelining degree for SolveParallelPipelined:
	// 0 picks the cost-model optimum per exchange phase; a positive value
	// forces that degree (capped by block granularity).
	PipelineQ int
	// Trace, when non-nil, receives every communication event of the
	// emulated machine (see the trace package). Only the emulated backend
	// emits events.
	Trace func(machine.Event)
	// Interrupt, when non-nil, is polled at every sweep boundary; once it
	// returns true the solve stops after the current sweep with
	// EigenResult.Interrupted set (see engine.Problem.Interrupt). The
	// batch-solve service wires this to each job's context.
	Interrupt func() bool
	// OnSweep, when non-nil, receives per-sweep progress (sweep count,
	// convergence statistics, the boundary decision) exactly once per sweep
	// — see engine.Problem.OnSweep. The batch-solve service forwards it
	// into each job's event stream.
	OnSweep func(engine.SweepProgress)
	// OnCheckpoint, when non-nil, receives a sweep-boundary checkpoint
	// every CheckpointEvery sweeps (see engine.Problem.OnCheckpoint); the
	// batch-solve service persists it through the durable job store.
	// Unsupported on pipelined and fixed-sweep solves.
	OnCheckpoint    func(*engine.Checkpoint)
	CheckpointEvery int
	// Resume, when non-nil, restores the solve from a previously captured
	// checkpoint instead of starting from the input matrix: the remaining
	// sweeps replay exactly what the uninterrupted run would have executed
	// (engine.Problem.Restore). The input matrix must still be supplied —
	// its shape seeds the problem and the gathered eigensystem.
	Resume *engine.Checkpoint
	// Backend selects the execution substrate. Nil defaults to the emulated
	// multi-port hypercube built from Ports/Ts/Tw/Tc/Trace; pass
	// &engine.Multicore{} for hardware-speed shared-memory execution or
	// &engine.Analytic{...} for a cost-model replay.
	Backend engine.ExecBackend
}

// backend returns the configured execution backend, defaulting to the
// emulated machine.
func (cfg ParallelConfig) backend() engine.ExecBackend {
	if cfg.Backend != nil {
		return cfg.Backend
	}
	return &engine.Emulated{
		Ports:   cfg.Ports,
		Ts:      cfg.Ts,
		Tw:      cfg.Tw,
		Tc:      cfg.Tc,
		OnEvent: cfg.Trace,
	}
}

// problem assembles the engine problem shared by the distributed solvers.
func (cfg ParallelConfig) problem(a *matrix.Dense, d int, pipelined bool) (*engine.Problem, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("jacobi: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	fam := cfg.Family
	if fam == nil {
		fam = ordering.NewBRFamily()
	}
	prob := &engine.Problem{
		Dim:             d,
		Family:          fam,
		Opts:            cfg.Options,
		FixedSweeps:     cfg.FixedSweeps,
		Rows:            a.Rows,
		Interrupt:       cfg.Interrupt,
		OnSweep:         cfg.OnSweep,
		OnCheckpoint:    cfg.OnCheckpoint,
		CheckpointEvery: cfg.CheckpointEvery,
		Pipelined:       pipelined,
		PipelineQ:       cfg.PipelineQ,
		PipelineTs:      cfg.Ts,
		PipelineTw:      cfg.Tw,
		PipelinePorts:   int(cfg.Ports),
	}
	if cfg.Resume != nil {
		// The checkpoint replaces the initial partition wholesale (blocks,
		// trace, sweep position); building blocks from the matrix here
		// would be an O(n²) copy thrown straight away.
		if err := prob.Restore(cfg.Resume); err != nil {
			return nil, err
		}
		return prob, nil
	}
	blocks, err := BuildBlocks(a, d)
	if err != nil {
		return nil, err
	}
	prob.Blocks = blocks
	prob.TraceGram = traceGram(a)
	return prob, nil
}

// SolveParallel runs the one-sided Jacobi method distributed over the 2^d
// nodes of the configured execution backend (by default the emulated
// multi-port hypercube, one goroutine per node, exchanging real column
// blocks through the machine's channels) according to the ordering's sweep
// schedule. Rotations are identical to SolveSchedule's (disjoint columns
// across nodes within a step), so with the MaxRelCriterion the two produce
// bit-identical results — as do the multicore and analytic backends; tests
// assert this.
func SolveParallel(a *matrix.Dense, d int, cfg ParallelConfig) (*EigenResult, *machine.RunStats, error) {
	prob, err := cfg.problem(a, d, false)
	if err != nil {
		return nil, nil, err
	}
	out, stats, err := prob.Run(cfg.backend())
	if err != nil {
		return nil, nil, err
	}
	return gatherEigen(a, out), stats, nil
}

// SolveParallelContext is SolveParallel (or, with pipelined set,
// SolveParallelPipelined) with the solve's Interrupt wired to ctx
// (engine.Problem.RunContext): a cancellation stops the sweep loop at the
// next sweep boundary and the context's error is returned. It is the
// job-level entry point of the batch-solve service.
func SolveParallelContext(ctx context.Context, a *matrix.Dense, d int, cfg ParallelConfig, pipelined bool) (*EigenResult, *machine.RunStats, error) {
	prob, err := cfg.problem(a, d, pipelined)
	if err != nil {
		return nil, nil, err
	}
	out, stats, err := prob.RunContext(ctx, cfg.backend())
	if err != nil {
		return nil, nil, err
	}
	return gatherEigen(a, out), stats, nil
}

// gatherEigen collects the final block placement into full factors and
// extracts the eigenpairs.
func gatherEigen(a *matrix.Dense, out *engine.Outcome) *EigenResult {
	m := a.Rows
	w := matrix.NewDense(m, m)
	u := matrix.NewDense(m, m)
	Gather(out.Blocks, w, u)
	res := eigenFromOutcome(out)
	finishEigen(a, w, u, res)
	return res
}
