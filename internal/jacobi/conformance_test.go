package jacobi

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/ordering"
)

// The cross-backend conformance suite: every solver flavor (cyclic
// sequential, schedule/block sequential, parallel, pipelined, SVD) crossed
// with every execution backend on seeded inputs. Backends running the
// reference kernel path (emulated, analytic, and multicore opted into
// ReferenceKernels) must be bit-identical across backends and to the
// sequential central replay; the production multicore backend runs the
// fused kernels (internal/kernel) and must stay within the documented ulp
// budget of that class. The emulated and analytic backends must agree
// exactly on message counts and raw payload elements (the emulated
// machine's serialized totals additionally carry encoding headers). CI
// runs these tests under -race.

// confBackend pairs a backend instance with its conformance class: exact
// backends run the reference kernels and join the bit-identical
// equivalence class; the rest are held to the fused-path ulp budget.
type confBackend struct {
	be    engine.ExecBackend
	exact bool
}

// conformanceBackends builds one instance of each backend configuration
// with the paper's Figure 2 machine parameters.
func conformanceBackends() map[string]confBackend {
	return map[string]confBackend{
		"emulated":      {&engine.Emulated{Ts: 1000, Tw: 100}, true},
		"multicore-ref": {&engine.Multicore{ReferenceKernels: true}, true},
		"analytic":      {&engine.Analytic{Ts: 1000, Tw: 100}, true},
		"multicore":     {&engine.Multicore{}, false},
	}
}

// fusedValueTol is the integration-level budget for fused-kernel results
// against the reference path: the kernel-level reassociation bound
// (internal/kernel, ~n·eps per Gram entry) compounded over a converged
// solve's rotations stays orders of magnitude below it.
const fusedValueTol = 1e-8

func valuesClose(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for k := range want {
		if rel := math.Abs(got[k]-want[k]) / (1 + math.Abs(want[k])); rel > fusedValueTol {
			t.Errorf("%s: value %d = %.17g, want %.17g (rel %.2e)", label, k, got[k], want[k], rel)
		}
	}
}

func valuesBitIdentical(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("%s: value %d = %.17g, want %.17g", label, k, got[k], want[k])
		}
	}
}

// TestConformanceEigenMatrix crosses the eigensolver flavors with the
// backends for two ordering families.
func TestConformanceEigenMatrix(t *testing.T) {
	const n, d = 32, 2
	for _, famName := range []string{"pbr", "d4"} {
		fam, err := ordering.FamilyByName(famName)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(famName, func(t *testing.T) {
			rng := rand.New(rand.NewSource(4242))
			a := matrix.RandomSymmetric(n, rng)

			// Sequential references: the central schedule replay (the block
			// algorithm run on one node) and the ordering-independent cyclic
			// loop.
			ref, err := SolveSchedule(a, d, fam, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cyc, err := SolveCyclic(a, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for k := range ref.Values {
				if rel := math.Abs(ref.Values[k]-cyc.Values[k]) / (1 + math.Abs(ref.Values[k])); rel > 1e-8 {
					t.Errorf("cyclic vs schedule eigenvalue %d: %.12g vs %.12g", k, cyc.Values[k], ref.Values[k])
				}
			}

			type flavor struct {
				name string
				run  func(be engine.ExecBackend) (*EigenResult, *machine.RunStats, error)
			}
			flavors := []flavor{
				{"parallel", func(be engine.ExecBackend) (*EigenResult, *machine.RunStats, error) {
					return SolveParallel(a, d, ParallelConfig{Family: fam, Ts: 1000, Tw: 100, Backend: be})
				}},
				// Q = 1 pipelining degenerates to the unpipelined iteration
				// order, so it stays in the bit-identical equivalence class.
				{"pipelined-q1", func(be engine.ExecBackend) (*EigenResult, *machine.RunStats, error) {
					return SolveParallelPipelined(a, d, ParallelConfig{Family: fam, Ts: 1000, Tw: 100, PipelineQ: 1, Backend: be})
				}},
			}
			for _, fl := range flavors {
				t.Run(fl.name, func(t *testing.T) {
					stats := map[string]*machine.RunStats{}
					for beName, cb := range conformanceBackends() {
						res, st, err := fl.run(cb.be)
						if err != nil {
							t.Fatalf("%s: %v", beName, err)
						}
						label := fmt.Sprintf("%s/%s", fl.name, beName)
						if cb.exact {
							valuesBitIdentical(t, label, res.Values, ref.Values)
							if res.Sweeps != ref.Sweeps || res.Rotations != ref.Rotations {
								t.Errorf("%s: %d sweeps/%d rotations, reference %d/%d",
									label, res.Sweeps, res.Rotations, ref.Sweeps, ref.Rotations)
							}
							stats[beName] = st
						} else {
							// Fused path: values within the ulp budget; sweep and
							// rotation counts are not pinned across kernel paths
							// (skip-threshold sensitivity), so neither are the
							// communication totals that scale with them.
							valuesClose(t, label, res.Values, ref.Values)
							if !res.Converged {
								t.Errorf("%s: did not converge", label)
							}
							if st.Elements != st.RawElements {
								t.Errorf("%s: shared-memory backend must count raw elements (%d vs %d)",
									label, st.Elements, st.RawElements)
							}
						}
					}
					assertCommConformance(t, stats)
				})
			}
		})
	}
}

// assertCommConformance checks the communication bookkeeping across the
// reference-kernel backends of one flavor run: identical message counts
// everywhere, identical raw payload elements between emulated and analytic
// (and reference-kernel multicore, which counts raw by construction), and
// the emulated machine's serialized total strictly above the raw total
// (headers).
func assertCommConformance(t *testing.T, stats map[string]*machine.RunStats) {
	t.Helper()
	emu, ana, mc := stats["emulated"], stats["analytic"], stats["multicore-ref"]
	if emu.Messages != ana.Messages || emu.Messages != mc.Messages {
		t.Errorf("message counts diverge: emulated %d, analytic %d, multicore %d",
			emu.Messages, ana.Messages, mc.Messages)
	}
	if emu.RawElements != ana.Elements {
		t.Errorf("raw payload elements diverge: emulated %d, analytic %d", emu.RawElements, ana.Elements)
	}
	if ana.Elements != ana.RawElements || mc.Elements != mc.RawElements {
		t.Errorf("shared-memory backends must count raw elements (analytic %d/%d, multicore %d/%d)",
			ana.Elements, ana.RawElements, mc.Elements, mc.RawElements)
	}
	if ana.Elements != mc.Elements {
		t.Errorf("analytic and multicore element counts diverge: %d vs %d", ana.Elements, mc.Elements)
	}
	if emu.Elements <= emu.RawElements {
		t.Errorf("emulated serialized elements %d should exceed raw %d (encoding headers)",
			emu.Elements, emu.RawElements)
	}
}

// TestConformanceSVDMatrix crosses the distributed SVD with every backend
// against the sequential central replay, rectangular blocks included.
func TestConformanceSVDMatrix(t *testing.T) {
	const rows, cols, d = 32, 16, 2
	rng := rand.New(rand.NewSource(777))
	a := matrix.RandomDense(rows, cols, rng)
	fam := ordering.NewPermutedBRFamily()

	ref, err := SolveSVD(a, d, fam, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats := map[string]*machine.RunStats{}
	for beName, cb := range conformanceBackends() {
		res, st, err := SolveSVDParallel(a, d, ParallelConfig{Family: fam, Ts: 1000, Tw: 100, Backend: cb.be})
		if err != nil {
			t.Fatalf("%s: %v", beName, err)
		}
		label := "svd/" + beName
		if cb.exact {
			valuesBitIdentical(t, label, res.Values, ref.Values)
			if res.Sweeps != ref.Sweeps || res.Rotations != ref.Rotations {
				t.Errorf("%s: %d sweeps/%d rotations, reference %d/%d",
					label, res.Sweeps, res.Rotations, ref.Sweeps, ref.Rotations)
			}
			stats[beName] = st
		} else {
			valuesClose(t, label, res.Values, ref.Values)
		}
		if rec := SVDReconstructionError(a, res); rec > 1e-10 {
			t.Errorf("%s: reconstruction error %.2e", label, rec)
		}
	}
	assertCommConformance(t, stats)
}

// TestConformanceFixedSweepCounts: with a fixed sweep budget every flavor
// and backend performs the identical number of rotations — the engine's
// rotation order is an invariant of the substrate, not just the converged
// result.
func TestConformanceFixedSweepCounts(t *testing.T) {
	const n, d, sweeps = 24, 1, 3
	rng := rand.New(rand.NewSource(31))
	a := matrix.RandomSymmetric(n, rng)
	fam := ordering.NewBRFamily()
	var wantRot int
	for beName, cb := range conformanceBackends() {
		res, _, err := SolveParallel(a, d, ParallelConfig{Family: fam, Ts: 1000, Tw: 100, FixedSweeps: sweeps, Backend: cb.be})
		if err != nil {
			t.Fatalf("%s: %v", beName, err)
		}
		if res.Sweeps != sweeps {
			t.Errorf("%s: ran %d sweeps, want %d", beName, res.Sweeps, sweeps)
		}
		// A short fixed-sweep run stays far from the skip threshold, so even
		// the fused path must rotate every visited pair: counts agree across
		// all kernel paths here.
		if wantRot == 0 {
			wantRot = res.Rotations
		} else if res.Rotations != wantRot {
			t.Errorf("%s: %d rotations, others %d", beName, res.Rotations, wantRot)
		}
	}
}

// TestConformanceAnalyticModel: the analytic backend's makespan equals the
// closed-form per-sweep baseline cost exactly, for a spread of problem
// shapes — the per-job guarantee the batch service's cost-only queries
// rely on.
func TestConformanceAnalyticModel(t *testing.T) {
	cases := []struct{ n, d, sweeps int }{
		{32, 1, 1},
		{32, 2, 2},
		{64, 2, 1},
		{64, 3, 2},
		{128, 3, 1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("n=%d_d=%d_s=%d", tc.n, tc.d, tc.sweeps), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(tc.n*100 + tc.d)))
			a := matrix.RandomSymmetric(tc.n, rng)
			cfg := ParallelConfig{
				Family:      ordering.NewBRFamily(),
				Ts:          1000,
				Tw:          100,
				FixedSweeps: tc.sweeps,
				Backend:     &engine.Analytic{Ts: 1000, Tw: 100},
			}
			_, stats, err := SolveParallel(a, tc.d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := float64(tc.sweeps) * costmodel.BaselineSweepCost(tc.d, costmodel.Params{M: float64(tc.n), Ts: 1000, Tw: 100})
			if rel := math.Abs(stats.Makespan-want) / want; rel > 1e-9 {
				t.Errorf("analytic makespan %.3f vs closed form %.3f (rel %.2e)", stats.Makespan, want, rel)
			}
		})
	}
}
