package jacobi

import (
	"repro/internal/engine"
	"repro/internal/matrix"
)

// Block is the unit of data movement of the parallel algorithm; see
// engine.Block.
type Block = engine.Block

// BuildBlocks splits the m columns of the symmetric input into 2^(d+1)
// blocks per the ordering's partition; see engine.BuildBlocks.
func BuildBlocks(a *matrix.Dense, d int) ([]*Block, error) {
	return engine.BuildBlocks(a, d)
}

// PairWithin rotates every column pair inside the block (step 1 of the
// paper's block algorithm); see engine.PairWithin.
func PairWithin(b *Block, conv *ConvTracker) {
	engine.PairWithin(b, conv)
}

// PairCross rotates every (column of x, column of y) pair (step 2 of the
// paper's block algorithm); see engine.PairCross.
func PairCross(x, y *Block, conv *ConvTracker) {
	engine.PairCross(x, y, conv)
}

// PairCrossSlice rotates x's columns against the sub-range [lo, hi) of y's
// columns; see engine.PairCrossSlice.
func PairCrossSlice(x, y *Block, lo, hi int, conv *ConvTracker) {
	engine.PairCrossSlice(x, y, lo, hi, conv)
}

// PairWithinFused is PairWithin on the fused blocked kernels, with the
// worker's scratch carrying the column norms; see engine.PairWithinFused.
func PairWithinFused(b *Block, sc *Scratch, conv *ConvTracker) {
	engine.PairWithinFused(b, sc, conv)
}

// PairCrossFused is PairCross on the fused blocked kernels; see
// engine.PairCrossFused.
func PairCrossFused(x, y *Block, sc *Scratch, conv *ConvTracker) {
	engine.PairCrossFused(x, y, sc, conv)
}

// Gather writes the blocks' columns back into full matrices W and U; see
// engine.Gather.
func Gather(blocks []*Block, w, u *matrix.Dense) {
	engine.Gather(blocks, w, u)
}

// EncodeBlock flattens a square-solve block (factor height = column height)
// into a []float64 message for transport over the emulated machine; see
// engine.EncodeBlock.
func EncodeBlock(b *Block, m int) []float64 {
	return engine.EncodeBlock(b, m, m)
}

// DecodeBlock parses a message produced by EncodeBlock.
func DecodeBlock(msg []float64, m int) (*Block, error) {
	return engine.DecodeBlock(msg, m, m)
}

// EncodeBlocks concatenates several square-solve blocks into one combined
// message; see engine.EncodeBlocks.
func EncodeBlocks(blocks []*Block, m int) []float64 {
	return engine.EncodeBlocks(blocks, m, m)
}

// DecodeBlocks parses a combined message produced by EncodeBlocks.
func DecodeBlocks(msg []float64, m int) ([]*Block, error) {
	return engine.DecodeBlocks(msg, m, m)
}

// SplitBlock partitions a block's columns into q contiguous slices sharing
// the parent's storage; see engine.SplitBlock.
func SplitBlock(b *Block, q int) []*Block {
	return engine.SplitBlock(b, q)
}

// AssembleBlock concatenates slices back into one block; see
// engine.AssembleBlock.
func AssembleBlock(slices []*Block) *Block {
	return engine.AssembleBlock(slices)
}
