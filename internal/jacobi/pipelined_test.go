package jacobi

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/ordering"
)

// With Q = 1 the pipelined schedule degenerates to the original iteration
// order, so the pipelined solver must be bit-identical to the unpipelined
// distributed solver.
func TestPipelinedQ1BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	cases := []struct{ m, d int }{{8, 1}, {16, 2}, {12, 2}}
	for _, c := range cases {
		a := matrix.RandomSymmetric(c.m, rng)
		for _, fam := range []ordering.Family{ordering.NewBRFamily(), ordering.NewPermutedBRFamily()} {
			cfg := parCfg(fam)
			ref, _, err := SolveParallel(a, c.d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfgQ1 := cfg
			cfgQ1.PipelineQ = 1
			got, _, err := SolveParallelPipelined(a, c.d, cfgQ1)
			if err != nil {
				t.Fatalf("m=%d d=%d %s: %v", c.m, c.d, fam.Name(), err)
			}
			if got.Sweeps != ref.Sweeps {
				t.Errorf("m=%d d=%d %s: sweeps %d vs %d", c.m, c.d, fam.Name(), got.Sweeps, ref.Sweeps)
			}
			for i := range ref.Values {
				if got.Values[i] != ref.Values[i] {
					t.Fatalf("m=%d d=%d %s: eigenvalue %d differs (Q=1 should be bit-identical)",
						c.m, c.d, fam.Name(), i)
				}
			}
		}
	}
}

// Pipelining with Q > 1 reorders rotations within a phase but must converge
// to the same spectrum with small residuals and visit exactly the same
// number of pairs per sweep.
func TestPipelinedQ2Spectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	cases := []struct{ m, d, q int }{
		{16, 1, 2}, {16, 2, 2}, {32, 2, 4}, {24, 2, 3}, {32, 3, 2},
	}
	for _, c := range cases {
		a := matrix.RandomSymmetric(c.m, rng)
		ref, err := SolveCyclic(a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, fam := range ordering.AllFamilies() {
			cfg := parCfg(fam)
			cfg.PipelineQ = c.q
			got, _, err := SolveParallelPipelined(a, c.d, cfg)
			if err != nil {
				t.Fatalf("m=%d d=%d q=%d %s: %v", c.m, c.d, c.q, fam.Name(), err)
			}
			if !got.Converged {
				t.Fatalf("m=%d d=%d q=%d %s: no convergence", c.m, c.d, c.q, fam.Name())
			}
			if dist := matrix.SortedEigenvalueDistance(ref.Values, got.Values); dist > 1e-8 {
				t.Errorf("m=%d d=%d q=%d %s: spectra differ by %g", c.m, c.d, c.q, fam.Name(), dist)
			}
			if r := matrix.EigenResidual(a, got.Values, got.Vectors); r > 1e-8 {
				t.Errorf("m=%d d=%d q=%d %s: residual %g", c.m, c.d, c.q, fam.Name(), r)
			}
		}
	}
}

// Automatic Q selection (PipelineQ = 0) must pick the cost-model optimum and
// still converge correctly.
func TestPipelinedAutoQ(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	a := matrix.RandomSymmetric(32, rng)
	cfg := parCfg(ordering.NewPermutedBRFamily())
	res, _, err := SolveParallelPipelined(a, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if r := matrix.EigenResidual(a, res.Values, res.Vectors); r > 1e-8 {
		t.Errorf("residual %g", r)
	}
}

// The multi-port pipelined run must beat the unpipelined run in modeled
// communication time on a configuration where pipelining pays (degree-4
// ordering, large blocks, shallow Q): the headline effect of the paper,
// measured on the emulated machine rather than the analytic model.
func TestPipelinedMakespanBeatsUnpipelined(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	a := matrix.RandomSymmetric(64, rng)
	d := 2
	cfg := parCfg(ordering.NewDegree4Family())
	cfg.FixedSweeps = 2
	_, statsUnpiped, err := SolveParallel(a, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PipelineQ = 3
	_, statsPiped, err := SolveParallelPipelined(a, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if statsPiped.Makespan >= statsUnpiped.Makespan {
		t.Errorf("pipelined makespan %g did not beat unpipelined %g",
			statsPiped.Makespan, statsUnpiped.Makespan)
	}
}

// Q larger than the block size degrades to empty packets but must stay
// correct.
func TestPipelinedOversizedQ(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	a := matrix.RandomSymmetric(8, rng) // blocks of 1 column at d=2
	cfg := parCfg(ordering.NewBRFamily())
	cfg.PipelineQ = 5 // will be capped to min block size = 1
	res, _, err := SolveParallelPipelined(a, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SolveCyclic(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dist := matrix.SortedEigenvalueDistance(ref.Values, res.Values); dist > 1e-8 {
		t.Errorf("spectra differ by %g", dist)
	}
}

func TestPipelinedRejectsNonSquare(t *testing.T) {
	if _, _, err := SolveParallelPipelined(matrix.NewDense(2, 3), 1, parCfg(nil)); err == nil {
		t.Error("non-square accepted")
	}
}

func TestSplitAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(217))
	a := matrix.RandomSymmetric(10, rng)
	blocks, err := BuildBlocks(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := blocks[0] // 5 columns
	for q := 1; q <= 7; q++ {
		slices := SplitBlock(b, q)
		if len(slices) != q {
			t.Fatalf("q=%d: %d slices", q, len(slices))
		}
		total := 0
		for _, s := range slices {
			total += s.NumCols()
		}
		if total != b.NumCols() {
			t.Fatalf("q=%d: slices cover %d columns", q, total)
		}
		re := AssembleBlock(slices)
		if re.NumCols() != b.NumCols() || re.ID != b.ID {
			t.Fatalf("q=%d: assembled %d cols id %d", q, re.NumCols(), re.ID)
		}
		for i := range re.Cols {
			if re.Cols[i] != b.Cols[i] {
				t.Fatalf("q=%d: column order changed", q)
			}
		}
	}
}

// SplitBlock returns views: rotating a slice's column mutates the parent.
func TestSplitBlockShares(t *testing.T) {
	rng := rand.New(rand.NewSource(219))
	a := matrix.RandomSymmetric(6, rng)
	blocks, err := BuildBlocks(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := blocks[0]
	slices := SplitBlock(b, 3)
	slices[0].A[0][0] = 42
	if b.A[0][0] != 42 {
		t.Error("SplitBlock copied instead of sharing")
	}
}

func TestEncodeDecodeBlocksRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	a := matrix.RandomSymmetric(6, rng)
	blocks, err := BuildBlocks(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	msg := EncodeBlocks(blocks[:3], 6)
	got, err := DecodeBlocks(msg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d blocks", len(got))
	}
	for i, b := range got {
		if b.ID != blocks[i].ID || b.NumCols() != blocks[i].NumCols() {
			t.Errorf("block %d mismatched", i)
		}
	}
	if _, err := DecodeBlocks(nil, 6); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := DecodeBlocks(append(msg, 1), 6); err == nil {
		t.Error("trailing garbage accepted")
	}
}
