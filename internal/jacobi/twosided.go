package jacobi

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
)

// twoSidedSkipEps mirrors the one-sided kernel's rotation-skip threshold
// (engine.RotatePair): far below any convergence tolerance.
const twoSidedSkipEps = 1e-15

// SolveTwoSided runs the classic cyclic two-sided Jacobi eigensolver
// (A ← JᵀAJ), the independent reference implementation used to validate the
// one-sided solvers: it shares no rotation kernel or data layout with them.
func SolveTwoSided(a *matrix.Dense, opts Options) (*EigenResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("jacobi: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-12 * (1 + a.MaxAbs())) {
		return nil, fmt.Errorf("jacobi: two-sided solver requires a symmetric matrix")
	}
	opts = opts.WithDefaults()
	m := a.Rows
	w := a.Clone()
	v := matrix.Identity(m)
	res := &EigenResult{}
	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		maxRel := 0.0
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				aii, ajj, aij := w.At(i, i), w.At(j, j), w.At(i, j)
				denom := math.Sqrt(math.Abs(aii*ajj)) + math.Abs(aij)
				var rel float64
				if denom > 0 {
					rel = math.Abs(aij) / denom
				}
				if rel > maxRel {
					maxRel = rel
				}
				if math.Abs(aij) <= twoSidedSkipEps*denom {
					continue
				}
				res.Rotations++
				// tan(2θ) = 2aij/(aii - ajj), stable smaller-angle form.
				var t float64
				theta := (ajj - aii) / (2 * aij)
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyTwoSided(w, i, j, c, s)
				// Accumulate V ← V·J.
				for k := 0; k < m; k++ {
					vi, vj := v.At(k, i), v.At(k, j)
					v.Set(k, i, c*vi-s*vj)
					v.Set(k, j, s*vi+c*vj)
				}
			}
		}
		res.Sweeps++
		res.FinalMaxRel = maxRel
		if maxRel < opts.Tol {
			res.Converged = true
			break
		}
	}
	// Extract and sort eigenpairs.
	type pair struct {
		value float64
		col   int
	}
	pairs := make([]pair, m)
	for i := 0; i < m; i++ {
		pairs[i] = pair{value: w.At(i, i), col: i}
	}
	sort.Slice(pairs, func(x, y int) bool { return pairs[x].value < pairs[y].value })
	res.Values = make([]float64, m)
	res.Vectors = matrix.NewDense(m, m)
	for k, p := range pairs {
		res.Values[k] = p.value
		res.Vectors.SetCol(k, v.Col(p.col))
	}
	return res, nil
}

// applyTwoSided performs W ← JᵀWJ for the plane rotation J in columns (i,j),
// exploiting and preserving symmetry.
func applyTwoSided(w *matrix.Dense, i, j int, c, s float64) {
	m := w.Rows
	// Rows/columns k ∉ {i,j}.
	for k := 0; k < m; k++ {
		if k == i || k == j {
			continue
		}
		wki, wkj := w.At(k, i), w.At(k, j)
		nki := c*wki - s*wkj
		nkj := s*wki + c*wkj
		w.Set(k, i, nki)
		w.Set(i, k, nki)
		w.Set(k, j, nkj)
		w.Set(j, k, nkj)
	}
	wii, wjj, wij := w.At(i, i), w.At(j, j), w.At(i, j)
	nii := c*c*wii - 2*s*c*wij + s*s*wjj
	njj := s*s*wii + 2*s*c*wij + c*c*wjj
	nij := (c*c-s*s)*wij + s*c*(wii-wjj)
	w.Set(i, i, nii)
	w.Set(j, j, njj)
	w.Set(i, j, nij)
	w.Set(j, i, nij)
}
