package jacobi

import (
	"fmt"
	"math/rand"

	"repro/internal/bitutil"
	"repro/internal/matrix"
	"repro/internal/ordering"
)

// Table2Cell is one row of the paper's Table 2: the average number of sweeps
// to convergence for a matrix size m on P = 2^d processors, per ordering.
type Table2Cell struct {
	M, P   int
	Sweeps map[string]float64 // family name -> average sweeps
}

// Table2Config parameterizes the convergence experiment.
type Table2Config struct {
	// Sizes are the matrix sizes; the paper uses 8, 16, 32, 64.
	Sizes []int
	// Trials is the number of random matrices per cell; the paper uses 30.
	Trials int
	// Tol is the convergence threshold on off(AᵀA)/trace(AᵀA). The paper
	// does not state its criterion; the default 3.5e-4 is sqrt(eps) for
	// single precision — the classic Jacobi stopping rule in a 1998
	// setting — and reproduces the paper's 3.2–6.0 sweep band (see
	// EXPERIMENTS.md).
	Tol float64
	// MaxSweeps bounds each solve.
	MaxSweeps int
	// Seed makes the experiment reproducible.
	Seed int64
	// Families are the orderings to compare; defaults to BR, permuted-BR
	// and degree-4 as in the paper.
	Families []ordering.Family
}

func (c Table2Config) withDefaults() Table2Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{8, 16, 32, 64}
	}
	if c.Trials <= 0 {
		c.Trials = 30
	}
	if c.Tol <= 0 {
		c.Tol = 3.5e-4
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 40
	}
	if len(c.Families) == 0 {
		c.Families = []ordering.Family{
			ordering.NewBRFamily(),
			ordering.NewPermutedBRFamily(),
			ordering.NewDegree4Family(),
		}
	}
	return c
}

// RunTable2 reproduces the paper's Table 2: for every matrix size m in the
// config and every P = 2^d with 2^(d+1) <= m, it solves Trials random
// symmetric matrices (entries uniform in [-1,1]) with each ordering family
// and reports the average sweep count. The same matrices are used across
// families (as the paper's identical columns for BR and permuted-BR imply).
func RunTable2(cfg Table2Config) ([]Table2Cell, error) {
	cfg = cfg.withDefaults()
	var cells []Table2Cell
	for _, m := range cfg.Sizes {
		maxD := bitutil.Log2(m) - 1 // largest d with 2^(d+1) <= m
		for d := 1; d <= maxD; d++ {
			cell := Table2Cell{M: m, P: 1 << uint(d), Sweeps: make(map[string]float64)}
			// Fresh deterministic stream per cell so cells are independent
			// of each other and of the family iteration order.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(m)*1000 + int64(d)))
			mats := make([]*matrix.Dense, cfg.Trials)
			for t := range mats {
				mats[t] = matrix.RandomSymmetric(m, rng)
			}
			for _, fam := range cfg.Families {
				total := 0
				for _, a := range mats {
					res, err := SolveSchedule(a, d, fam, Options{Tol: cfg.Tol, MaxSweeps: cfg.MaxSweeps, Criterion: OffFrobCriterion})
					if err != nil {
						return nil, fmt.Errorf("jacobi: table2 m=%d d=%d %s: %w", m, d, fam.Name(), err)
					}
					if !res.Converged {
						return nil, fmt.Errorf("jacobi: table2 m=%d d=%d %s: no convergence in %d sweeps", m, d, fam.Name(), cfg.MaxSweeps)
					}
					total += res.Sweeps
				}
				cell.Sweeps[fam.Name()] = float64(total) / float64(cfg.Trials)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}
