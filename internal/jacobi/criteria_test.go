package jacobi

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/ordering"
)

// The distributed solver under the OffFrob criterion must converge and
// agree with the sequential schedule solver's spectrum. (Sweep counts may
// differ by the reduction's float-summation order in principle, so only the
// numerics are asserted tightly.)
func TestSolveParallelOffFrobCriterion(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	a := matrix.RandomSymmetric(24, rng)
	cfg := parCfg(ordering.NewBRFamily())
	cfg.Options = Options{Tol: 3.5e-4, Criterion: OffFrobCriterion}
	par, _, err := SolveParallel(a, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Converged {
		t.Fatal("no convergence")
	}
	seq, err := SolveSchedule(a, 2, ordering.NewBRFamily(), Options{Tol: 3.5e-4, Criterion: OffFrobCriterion})
	if err != nil {
		t.Fatal(err)
	}
	if par.Sweeps != seq.Sweeps {
		t.Errorf("sweeps differ: parallel %d vs sequential %d", par.Sweeps, seq.Sweeps)
	}
	if d := matrix.SortedEigenvalueDistance(par.Values, seq.Values); d > 1e-10 {
		t.Errorf("spectra differ by %g", d)
	}
	// The loose single-precision-style criterion still yields a usable
	// decomposition (residual at the criterion's scale).
	if r := matrix.EigenResidual(a, par.Values, par.Vectors); r > 1e-3 {
		t.Errorf("residual %g too large even for the loose criterion", r)
	}
}

// The OffFrob criterion is strictly looser than MaxRel at matching
// tolerances: it must never need more sweeps.
func TestCriteriaOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for trial := 0; trial < 5; trial++ {
		a := matrix.RandomSymmetric(16, rng)
		frob, err := SolveCyclic(a, Options{Tol: 1e-8, Criterion: OffFrobCriterion})
		if err != nil {
			t.Fatal(err)
		}
		maxrel, err := SolveCyclic(a, Options{Tol: 1e-8, Criterion: MaxRelCriterion})
		if err != nil {
			t.Fatal(err)
		}
		if frob.Sweeps > maxrel.Sweeps {
			t.Errorf("trial %d: OffFrob took %d sweeps, MaxRel %d", trial, frob.Sweeps, maxrel.Sweeps)
		}
	}
}

// The pipelined solver honors the OffFrob criterion too.
func TestPipelinedOffFrobCriterion(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	a := matrix.RandomSymmetric(16, rng)
	cfg := parCfg(ordering.NewDegree4Family())
	cfg.Options = Options{Tol: 3.5e-4, Criterion: OffFrobCriterion}
	cfg.PipelineQ = 2
	res, _, err := SolveParallelPipelined(a, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	ref, err := SolveCyclic(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.SortedEigenvalueDistance(res.Values, ref.Values); d > 1e-2 {
		t.Errorf("spectra differ by %g (loose criterion should still land close)", d)
	}
}

// Table 2 uses the same matrices across families; the cells must therefore
// be reproducible for a fixed seed.
func TestTable2Deterministic(t *testing.T) {
	run := func() []Table2Cell {
		cells, err := RunTable2(Table2Config{Sizes: []int{8}, Trials: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	a, b := run(), run()
	for i := range a {
		for k, v := range a[i].Sweeps {
			if b[i].Sweeps[k] != v {
				t.Fatalf("cell %d family %s not deterministic", i, k)
			}
		}
	}
}
