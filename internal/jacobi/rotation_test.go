package jacobi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// A rotation computed from (α, β, γ) must zero the rotated pair's inner
// product: (c·x - s·y)ᵀ(s·x + c·y) = 0.
func TestComputeRotationOrthogonalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		alpha := matrix.Dot(x, x)
		beta := matrix.Dot(y, y)
		gamma := matrix.Dot(x, y)
		r := ComputeRotation(alpha, beta, gamma)
		r.Apply(x, y)
		if g := math.Abs(matrix.Dot(x, y)); g > 1e-10*(alpha+beta) {
			t.Fatalf("trial %d: residual inner product %g", trial, g)
		}
	}
}

// Rotations are orthogonal: c² + s² = 1 and norms are preserved jointly:
// α' + β' = α + β.
func TestRotationPreservesEnergy(t *testing.T) {
	// Restrict inputs to the physical domain of Gram triples: α, β >= 0,
	// |γ| <= sqrt(αβ) (Cauchy-Schwarz), with magnitudes far from overflow.
	f := func(ra, rb, rg float64) bool {
		if math.IsNaN(ra) || math.IsNaN(rb) || math.IsNaN(rg) {
			return true
		}
		a := math.Mod(math.Abs(ra), 1e6)
		b := math.Mod(math.Abs(rb), 1e6)
		g := math.Mod(rg, 1.0) * math.Sqrt(a*b)
		r := ComputeRotation(a, b, g)
		return math.Abs(r.C*r.C+r.S*r.S-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}

	rng := rand.New(rand.NewSource(6))
	x := []float64{1, 2, 3}
	y := []float64{-1, 0.5, 2}
	before := matrix.Dot(x, x) + matrix.Dot(y, y)
	r := ComputeRotation(matrix.Dot(x, x), matrix.Dot(y, y), matrix.Dot(x, y))
	r.Apply(x, y)
	after := matrix.Dot(x, x) + matrix.Dot(y, y)
	if math.Abs(before-after) > 1e-12*before {
		t.Errorf("energy changed: %g -> %g", before, after)
	}
	_ = rng
}

func TestComputeRotationZeroGamma(t *testing.T) {
	r := ComputeRotation(2, 3, 0)
	if r.C != 1 || r.S != 0 {
		t.Errorf("zero gamma should give identity rotation, got %+v", r)
	}
}

// The smaller-angle choice keeps |s| <= c, which is what guarantees
// convergence of the Jacobi process.
func TestComputeRotationSmallAngle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		a := rng.Float64() * 10
		b := rng.Float64() * 10
		g := (rng.Float64() - 0.5) * 10
		if g == 0 {
			continue
		}
		r := ComputeRotation(a, b, g)
		if math.Abs(r.S) > r.C+1e-15 {
			t.Fatalf("|s| > c: %+v for (%g,%g,%g)", r, a, b, g)
		}
	}
}

func TestRotatePairSkipsTiny(t *testing.T) {
	var conv ConvTracker
	x := []float64{1, 0}
	y := []float64{0, 1}
	ux := []float64{1, 0}
	uy := []float64{0, 1}
	RotatePair(x, y, ux, uy, &conv)
	if conv.Rotations != 0 {
		t.Error("orthogonal pair should not rotate")
	}
	if conv.Pairs != 1 {
		t.Error("pair not counted")
	}
	if x[0] != 1 || y[1] != 1 {
		t.Error("columns modified")
	}
}

func TestConvTrackerMerge(t *testing.T) {
	a := ConvTracker{MaxRel: 0.5, Rotations: 3, Pairs: 10}
	b := ConvTracker{MaxRel: 0.7, Rotations: 2, Pairs: 5}
	a.Merge(b)
	if a.MaxRel != 0.7 || a.Rotations != 5 || a.Pairs != 15 {
		t.Errorf("merge result %+v", a)
	}
}

// RotatePair on a zero column: denominator zero, must not NaN or rotate.
func TestRotatePairZeroColumn(t *testing.T) {
	var conv ConvTracker
	x := []float64{0, 0}
	y := []float64{1, 2}
	ux := []float64{1, 0}
	uy := []float64{0, 1}
	RotatePair(x, y, ux, uy, &conv)
	if conv.Rotations != 0 {
		t.Error("zero column should not rotate")
	}
	for _, v := range append(append([]float64{}, x...), y...) {
		if math.IsNaN(v) {
			t.Fatal("NaN produced")
		}
	}
}
