package jacobi

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/ordering"
)

// Criterion selects the sweep convergence test; see engine.Criterion.
type Criterion = engine.Criterion

const (
	// MaxRelCriterion stops after the first sweep whose largest relative
	// off-diagonal value |γ|/sqrt(αβ) is below Tol (the default).
	MaxRelCriterion = engine.MaxRelCriterion
	// OffFrobCriterion stops when sqrt(Σγ²) falls below Tol·trace(AᵀA) —
	// the criterion used for the Table 2 reproduction (DESIGN.md note 10).
	OffFrobCriterion = engine.OffFrobCriterion
)

// Options configures a solve; see engine.Options.
type Options = engine.Options

// EigenResult is the outcome of a solve.
type EigenResult struct {
	// Values are the eigenvalues in ascending order.
	Values []float64
	// Vectors holds the corresponding eigenvectors as columns.
	Vectors *matrix.Dense
	// Sweeps is the number of sweeps executed.
	Sweeps int
	// Converged reports whether Tol was reached within MaxSweeps.
	Converged bool
	// Interrupted reports that the solve was stopped early at a sweep
	// boundary by an Interrupt hook (e.g. a canceled job context).
	Interrupted bool
	// FinalMaxRel is the largest relative off-diagonal value of the final
	// sweep.
	FinalMaxRel float64
	// Rotations is the total number of rotations applied.
	Rotations int
}

// traceGram returns trace(AᵀA) = ‖A‖²_F, the rotation-invariant normalizer
// of the OffFrob criterion.
func traceGram(a *matrix.Dense) float64 {
	t := a.FrobeniusNorm()
	return t * t
}

// SolveCyclic runs the classic row-cyclic one-sided Jacobi method: each
// sweep visits all column pairs (i, j), i < j, in lexicographic order. It is
// the ordering-independent sequential baseline.
func SolveCyclic(a *matrix.Dense, opts Options) (*EigenResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("jacobi: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	m := a.Rows
	w := a.Clone()
	u := matrix.Identity(m)
	wCols := make([][]float64, m)
	uCols := make([][]float64, m)
	for i := 0; i < m; i++ {
		wCols[i] = w.Col(i)
		uCols[i] = u.Col(i)
	}
	out := engine.RunCyclic(wCols, uCols, opts, traceGram(a))
	res := eigenFromOutcome(out)
	finishEigen(a, w, u, res)
	return res, nil
}

// SolveSchedule runs the one-sided Jacobi method following the exact
// rotation order of the given parallel Jacobi ordering on a d-cube, executed
// sequentially: per sweep, first the intra-block pairings of every block,
// then the 2^(d+1)-1 steps, pairing the co-resident blocks of each node in
// node order (the engine's central replay). The distributed solver performs
// the same rotations (disjoint columns across nodes within a step), so its
// result is numerically identical; tests assert this.
func SolveSchedule(a *matrix.Dense, d int, fam ordering.Family, opts Options) (*EigenResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("jacobi: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	blocks, err := BuildBlocks(a, d)
	if err != nil {
		return nil, err
	}
	prob := &engine.Problem{
		Blocks:    blocks,
		Dim:       d,
		Family:    fam,
		Opts:      opts,
		Rows:      a.Rows,
		TraceGram: traceGram(a),
	}
	out, err := prob.RunCentral()
	if err != nil {
		return nil, err
	}
	res := eigenFromOutcome(out)
	w := matrix.NewDense(a.Rows, a.Cols)
	u := matrix.NewDense(a.Rows, a.Cols)
	Gather(out.Blocks, w, u)
	finishEigen(a, w, u, res)
	return res, nil
}

// eigenFromOutcome copies the engine's convergence bookkeeping into a fresh
// EigenResult.
func eigenFromOutcome(out *engine.Outcome) *EigenResult {
	return &EigenResult{
		Sweeps:      out.Sweeps,
		Converged:   out.Converged,
		Interrupted: out.Interrupted,
		FinalMaxRel: out.FinalMaxRel,
		Rotations:   out.Rotations,
	}
}

// finishEigen extracts sorted eigenpairs from the converged factors:
// w = A·U with (near-)orthogonal columns, so λᵢ = uᵢᵀwᵢ and the eigenvector
// is uᵢ. For symmetric A with distinct |λ| these are the eigenpairs of A;
// a ±λ pair would need the Rayleigh-quotient refinement discussed in
// DESIGN.md, which random test matrices avoid almost surely.
func finishEigen(a, w, u *matrix.Dense, res *EigenResult) {
	m := a.Rows
	type pair struct {
		value float64
		col   int
	}
	pairs := make([]pair, m)
	for i := 0; i < m; i++ {
		pairs[i] = pair{value: matrix.Dot(u.Col(i), w.Col(i)), col: i}
	}
	sort.Slice(pairs, func(x, y int) bool { return pairs[x].value < pairs[y].value })
	res.Values = make([]float64, m)
	res.Vectors = matrix.NewDense(m, m)
	for k, p := range pairs {
		res.Values[k] = p.value
		col := u.Col(p.col)
		// Normalize defensively; accumulated rotations keep u orthonormal
		// to machine precision already.
		norm := matrix.Norm2(col)
		dst := res.Vectors.Col(k)
		copy(dst, col)
		if norm > 0 && math.Abs(norm-1) > 1e-12 {
			matrix.Scale(dst, 1/norm)
		}
	}
}
