package jacobi

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
	"repro/internal/ordering"
)

// Criterion selects the sweep convergence test.
type Criterion int

const (
	// MaxRelCriterion stops after the first sweep whose largest relative
	// off-diagonal value |γ|/sqrt(αβ) is below Tol. It is the strictest
	// per-pair test and the default.
	MaxRelCriterion Criterion = iota
	// OffFrobCriterion stops when sqrt(Σγ²) — the running estimate of
	// off(AᵀA) gathered while the sweep visits each pair — falls below
	// Tol·trace(AᵀA). The trace equals ‖A‖²_F and is invariant under the
	// rotations, so the test is scale-free and needs no extra passes; it is
	// the criterion used for the Table 2 reproduction (DESIGN.md note 10).
	OffFrobCriterion
)

// Options configures a solve.
type Options struct {
	// Tol is the sweep convergence threshold; its meaning depends on
	// Criterion. Default 1e-10.
	Tol float64
	// MaxSweeps bounds the number of sweeps. Default 40.
	MaxSweeps int
	// Criterion selects the convergence test. Default MaxRelCriterion.
	Criterion Criterion
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 40
	}
	return o
}

// converged applies the configured criterion to one sweep's statistics.
// traceGram is trace(AᵀA) = ‖A‖²_F of the input (rotation-invariant).
func (o Options) converged(conv ConvTracker, traceGram float64) bool {
	switch o.Criterion {
	case OffFrobCriterion:
		if traceGram <= 0 {
			return true
		}
		return math.Sqrt(conv.OffSq) < o.Tol*traceGram
	default:
		return conv.MaxRel < o.Tol
	}
}

// EigenResult is the outcome of a solve.
type EigenResult struct {
	// Values are the eigenvalues in ascending order.
	Values []float64
	// Vectors holds the corresponding eigenvectors as columns.
	Vectors *matrix.Dense
	// Sweeps is the number of sweeps executed.
	Sweeps int
	// Converged reports whether Tol was reached within MaxSweeps.
	Converged bool
	// FinalMaxRel is the largest relative off-diagonal value of the final
	// sweep.
	FinalMaxRel float64
	// Rotations is the total number of rotations applied.
	Rotations int
}

// SolveCyclic runs the classic row-cyclic one-sided Jacobi method: each
// sweep visits all column pairs (i, j), i < j, in lexicographic order. It is
// the ordering-independent sequential baseline.
func SolveCyclic(a *matrix.Dense, opts Options) (*EigenResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("jacobi: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	opts = opts.withDefaults()
	m := a.Rows
	w := a.Clone()
	u := matrix.Identity(m)
	traceGram := w.FrobeniusNorm()
	traceGram *= traceGram
	res := &EigenResult{}
	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		var conv ConvTracker
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				RotatePair(w.Col(i), w.Col(j), u.Col(i), u.Col(j), &conv)
			}
		}
		res.Sweeps++
		res.Rotations += conv.Rotations
		res.FinalMaxRel = conv.MaxRel
		if opts.converged(conv, traceGram) {
			res.Converged = true
			break
		}
	}
	finishEigen(a, w, u, res)
	return res, nil
}

// SolveSchedule runs the one-sided Jacobi method following the exact
// rotation order of the given parallel Jacobi ordering on a d-cube, executed
// sequentially: per sweep, first the intra-block pairings of every block,
// then the 2^(d+1)-1 steps, pairing the co-resident blocks of each node in
// node order. The distributed solver performs the same rotations (disjoint
// columns across nodes within a step), so its result is numerically
// identical; tests assert this.
func SolveSchedule(a *matrix.Dense, d int, fam ordering.Family, opts Options) (*EigenResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("jacobi: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	opts = opts.withDefaults()
	sw, err := ordering.BuildSweep(d, fam)
	if err != nil {
		return nil, err
	}
	blocks, err := BuildBlocks(a, d)
	if err != nil {
		return nil, err
	}
	st := ordering.NewState(d)
	nodes := 1 << uint(d)
	traceGram := a.FrobeniusNorm()
	traceGram *= traceGram
	res := &EigenResult{}
	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		var conv ConvTracker
		// Step 1 of the block algorithm: intra-block pairings, performed on
		// whichever node currently holds each block (node order).
		for p := 0; p < nodes; p++ {
			nb := st.Node(p)
			PairWithin(blocks[nb.A], &conv)
			PairWithin(blocks[nb.B], &conv)
		}
		st.RunSweep(sw, sweep, func(step int, cur *ordering.State) {
			for p := 0; p < nodes; p++ {
				nb := cur.Node(p)
				PairCross(blocks[nb.A], blocks[nb.B], &conv)
			}
		})
		res.Sweeps++
		res.Rotations += conv.Rotations
		res.FinalMaxRel = conv.MaxRel
		if opts.converged(conv, traceGram) {
			res.Converged = true
			break
		}
	}
	w := matrix.NewDense(a.Rows, a.Cols)
	u := matrix.NewDense(a.Rows, a.Cols)
	Gather(blocks, w, u)
	finishEigen(a, w, u, res)
	return res, nil
}

// finishEigen extracts sorted eigenpairs from the converged factors:
// w = A·U with (near-)orthogonal columns, so λᵢ = uᵢᵀwᵢ and the eigenvector
// is uᵢ. For symmetric A with distinct |λ| these are the eigenpairs of A;
// a ±λ pair would need the Rayleigh-quotient refinement discussed in
// DESIGN.md, which random test matrices avoid almost surely.
func finishEigen(a, w, u *matrix.Dense, res *EigenResult) {
	m := a.Rows
	type pair struct {
		value float64
		col   int
	}
	pairs := make([]pair, m)
	for i := 0; i < m; i++ {
		pairs[i] = pair{value: matrix.Dot(u.Col(i), w.Col(i)), col: i}
	}
	sort.Slice(pairs, func(x, y int) bool { return pairs[x].value < pairs[y].value })
	res.Values = make([]float64, m)
	res.Vectors = matrix.NewDense(m, m)
	for k, p := range pairs {
		res.Values[k] = p.value
		col := u.Col(p.col)
		// Normalize defensively; accumulated rotations keep u orthonormal
		// to machine precision already.
		norm := matrix.Norm2(col)
		dst := res.Vectors.Col(k)
		copy(dst, col)
		if norm > 0 && math.Abs(norm-1) > 1e-12 {
			matrix.Scale(dst, 1/norm)
		}
	}
}
