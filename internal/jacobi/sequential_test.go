package jacobi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/ordering"
)

func TestSolveCyclicKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := matrix.NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	res, err := SolveCyclic(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.Values[0]-1) > 1e-10 || math.Abs(res.Values[1]-3) > 1e-10 {
		t.Errorf("eigenvalues %v, want [1 3]", res.Values)
	}
	if r := matrix.EigenResidual(a, res.Values, res.Vectors); r > 1e-10 {
		t.Errorf("residual %g", r)
	}
}

func TestSolveCyclicDiagonal(t *testing.T) {
	a := matrix.NewDense(3, 3)
	a.Set(0, 0, -2)
	a.Set(1, 1, 5)
	a.Set(2, 2, 1)
	res, err := SolveCyclic(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-2, 1, 5}
	for i, w := range want {
		if math.Abs(res.Values[i]-w) > 1e-12 {
			t.Errorf("values %v, want %v", res.Values, want)
			break
		}
	}
	if res.Sweeps != 1 {
		t.Errorf("diagonal matrix took %d sweeps", res.Sweeps)
	}
}

func TestSolveCyclicRandomAgainstTwoSided(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, m := range []int{4, 9, 16, 25} {
		a := matrix.RandomSymmetric(m, rng)
		one, err := SolveCyclic(a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		two, err := SolveTwoSided(a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !one.Converged || !two.Converged {
			t.Fatalf("m=%d: convergence one=%v two=%v", m, one.Converged, two.Converged)
		}
		if d := matrix.SortedEigenvalueDistance(one.Values, two.Values); d > 1e-8 {
			t.Errorf("m=%d: spectra differ by %g", m, d)
		}
		if r := matrix.EigenResidual(a, one.Values, one.Vectors); r > 1e-8 {
			t.Errorf("m=%d: one-sided residual %g", m, r)
		}
		if o := matrix.OrthogonalityError(one.Vectors); o > 1e-10 {
			t.Errorf("m=%d: eigenvectors not orthonormal: %g", m, o)
		}
	}
}

// The schedule-driven solver must converge to the same spectrum as the
// cyclic baseline for every family and several (m, d) shapes.
func TestSolveScheduleMatchesCyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cases := []struct{ m, d int }{
		{8, 1}, {8, 2}, {16, 2}, {16, 3}, {12, 1}, {10, 2}, {32, 3},
	}
	for _, c := range cases {
		a := matrix.RandomSymmetric(c.m, rng)
		ref, err := SolveCyclic(a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, fam := range ordering.AllFamilies() {
			res, err := SolveSchedule(a, c.d, fam, Options{})
			if err != nil {
				t.Fatalf("m=%d d=%d %s: %v", c.m, c.d, fam.Name(), err)
			}
			if !res.Converged {
				t.Fatalf("m=%d d=%d %s: no convergence", c.m, c.d, fam.Name())
			}
			if dist := matrix.SortedEigenvalueDistance(ref.Values, res.Values); dist > 1e-8 {
				t.Errorf("m=%d d=%d %s: spectra differ by %g", c.m, c.d, fam.Name(), dist)
			}
			if r := matrix.EigenResidual(a, res.Values, res.Vectors); r > 1e-8 {
				t.Errorf("m=%d d=%d %s: residual %g", c.m, c.d, fam.Name(), r)
			}
		}
	}
}

// d=0 degenerates to a single node doing intra-block + one cross pairing:
// still a correct solver.
func TestSolveScheduleSingleNode(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := matrix.RandomSymmetric(6, rng)
	res, err := SolveSchedule(a, 0, ordering.NewBRFamily(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if r := matrix.EigenResidual(a, res.Values, res.Vectors); r > 1e-8 {
		t.Errorf("residual %g", r)
	}
}

func TestSolveRejectsNonSquare(t *testing.T) {
	a := matrix.NewDense(3, 4)
	if _, err := SolveCyclic(a, Options{}); err == nil {
		t.Error("non-square accepted by cyclic")
	}
	if _, err := SolveSchedule(a, 1, ordering.NewBRFamily(), Options{}); err == nil {
		t.Error("non-square accepted by schedule")
	}
	if _, err := SolveTwoSided(a, Options{}); err == nil {
		t.Error("non-square accepted by two-sided")
	}
}

func TestSolveTwoSidedRejectsAsymmetric(t *testing.T) {
	a := matrix.NewDense(2, 2)
	a.Set(0, 1, 1) // not symmetric
	if _, err := SolveTwoSided(a, Options{}); err == nil {
		t.Error("asymmetric matrix accepted")
	}
}

// MaxSweeps is honored and non-convergence is reported, not hidden.
func TestSolveMaxSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := matrix.RandomSymmetric(16, rng)
	res, err := SolveCyclic(a, Options{Tol: 1e-14, MaxSweeps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("cannot converge to 1e-14 in one sweep")
	}
	if res.Sweeps != 1 {
		t.Errorf("Sweeps = %d", res.Sweeps)
	}
}

// Eigenvalues must come out sorted ascending.
func TestEigenvaluesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a := matrix.RandomSymmetric(12, rng)
	res, err := SolveCyclic(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Values); i++ {
		if res.Values[i] < res.Values[i-1] {
			t.Fatalf("values not sorted: %v", res.Values)
		}
	}
}

// Trace invariance: sum of eigenvalues equals trace of A.
func TestEigenvalueTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, m := range []int{5, 10, 20} {
		a := matrix.RandomSymmetric(m, rng)
		res, err := SolveCyclic(a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		trace := 0.0
		for i := 0; i < m; i++ {
			trace += a.At(i, i)
		}
		sum := 0.0
		for _, v := range res.Values {
			sum += v
		}
		if math.Abs(trace-sum) > 1e-9*(1+math.Abs(trace)) {
			t.Errorf("m=%d: trace %g vs eigenvalue sum %g", m, trace, sum)
		}
	}
}
