package jacobi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/ordering"
)

// TestSolveLaneReferenceBitIdentical: each job of a reference-mode lane is
// bit-for-bit the sequential reference solve of the same input — the lane
// engine's end-to-end conformance anchor.
func TestSolveLaneReferenceBitIdentical(t *testing.T) {
	const d, n, K = 2, 24, 4
	rng := rand.New(rand.NewSource(71))
	fam := ordering.NewBRFamily()
	reqs := make([]*LaneRequest, K)
	inputs := make([]*matrix.Dense, K)
	for k := 0; k < K; k++ {
		inputs[k] = matrix.RandomSymmetric(n, rng)
		reqs[k] = &LaneRequest{A: inputs[k]}
	}
	got, err := SolveLane(d, fam, true, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < K; k++ {
		want, err := SolveSchedule(inputs[k], d, fam, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got[k].Sweeps != want.Sweeps || got[k].Rotations != want.Rotations ||
			got[k].Converged != want.Converged {
			t.Errorf("job %d: (%d sweeps, %d rot, conv %v) vs schedule (%d, %d, %v)",
				k, got[k].Sweeps, got[k].Rotations, got[k].Converged,
				want.Sweeps, want.Rotations, want.Converged)
		}
		for i := range want.Values {
			if math.Float64bits(got[k].Values[i]) != math.Float64bits(want.Values[i]) {
				t.Fatalf("job %d eigenvalue %d: lane %v, schedule %v", k, i, got[k].Values[i], want.Values[i])
			}
		}
		for j := 0; j < n; j++ {
			gc, wc := got[k].Vectors.Col(j), want.Vectors.Col(j)
			for i := range wc {
				if math.Float64bits(gc[i]) != math.Float64bits(wc[i]) {
					t.Fatalf("job %d vector (%d,%d): lane diverges bitwise", k, i, j)
				}
			}
		}
	}
}

// TestSolveLaneFusedEigenAccuracy: the fused lane's eigenpairs reproduce
// the reference solve's within the integration tolerance of the fused
// solo path, and residuals ‖A·v − λv‖ stay at solve accuracy.
func TestSolveLaneFusedEigenAccuracy(t *testing.T) {
	const d, n, K = 2, 32, 6
	rng := rand.New(rand.NewSource(72))
	fam := ordering.NewBRFamily()
	reqs := make([]*LaneRequest, K)
	inputs := make([]*matrix.Dense, K)
	for k := 0; k < K; k++ {
		inputs[k] = matrix.RandomSymmetric(n, rng)
		reqs[k] = &LaneRequest{A: inputs[k]}
	}
	got, err := SolveLane(d, fam, false, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < K; k++ {
		if !got[k].Converged {
			t.Errorf("job %d did not converge", k)
		}
		want, err := SolveSchedule(inputs[k], d, fam, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Values {
			if d := math.Abs(got[k].Values[i] - want.Values[i]); d > 1e-8 {
				t.Errorf("job %d eigenvalue %d drift %g", k, i, d)
			}
		}
		// Residual check against the original matrix.
		for j := 0; j < n; j++ {
			v := got[k].Vectors.Col(j)
			lam := got[k].Values[j]
			for i := 0; i < n; i++ {
				av := 0.0
				for l := 0; l < n; l++ {
					av += inputs[k].At(i, l) * v[l]
				}
				if math.Abs(av-lam*v[i]) > 1e-7 {
					t.Fatalf("job %d: residual at (%d,%d): %g", k, i, j, math.Abs(av-lam*v[i]))
				}
			}
		}
	}
}

// TestSolveLaneMixedOptions: per-job options are honored — a sweep-capped
// job reports its cap while lane mates run to convergence.
func TestSolveLaneMixedOptions(t *testing.T) {
	const d, n = 2, 16
	rng := rand.New(rand.NewSource(73))
	reqs := []*LaneRequest{
		{A: matrix.RandomSymmetric(n, rng), Options: Options{Tol: 1e-13, MaxSweeps: 2}},
		{A: matrix.RandomSymmetric(n, rng)},
		{A: matrix.RandomSymmetric(n, rng), FixedSweeps: 3},
	}
	got, err := SolveLane(d, nil, false, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Sweeps != 2 || got[0].Converged {
		t.Errorf("capped job: %d sweeps converged=%v, want 2/false", got[0].Sweeps, got[0].Converged)
	}
	if !got[1].Converged {
		t.Errorf("free job did not converge")
	}
	if got[2].Sweeps != 3 {
		t.Errorf("fixed-sweeps job ran %d sweeps, want 3", got[2].Sweeps)
	}
}

// TestSolveLaneRejectsMixedShapes: shape validation surfaces as an error,
// not a panic.
func TestSolveLaneRejectsMixedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	reqs := []*LaneRequest{
		{A: matrix.RandomSymmetric(16, rng)},
		{A: matrix.RandomSymmetric(24, rng)},
	}
	if _, err := SolveLane(2, nil, false, reqs); err == nil {
		t.Error("mixed-shape lane accepted")
	}
}
