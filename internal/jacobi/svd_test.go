package jacobi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/ordering"
)

func TestSVDKnownMatrix(t *testing.T) {
	// diag(3, 2) has singular values 3, 2.
	a := matrix.NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(1, 1, 2)
	svd, err := SolveSVD(a, 0, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !svd.Converged {
		t.Fatal("no convergence")
	}
	if math.Abs(svd.Values[0]-3) > 1e-12 || math.Abs(svd.Values[1]-2) > 1e-12 {
		t.Errorf("singular values %v", svd.Values)
	}
}

func TestSVDRandomSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for _, n := range []int{4, 8, 16} {
		a := matrix.RandomDense(n, n, rng)
		svd, err := SolveSVD(a, 1, ordering.NewBRFamily(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !svd.Converged {
			t.Fatalf("n=%d: no convergence", n)
		}
		if e := SVDReconstructionError(a, svd); e > 1e-10 {
			t.Errorf("n=%d: reconstruction error %g", n, e)
		}
		if o := matrix.OrthogonalityError(svd.U); o > 1e-10 {
			t.Errorf("n=%d: U orthogonality %g", n, o)
		}
		if o := matrix.OrthogonalityError(svd.V); o > 1e-10 {
			t.Errorf("n=%d: V orthogonality %g", n, o)
		}
		for i := 1; i < n; i++ {
			if svd.Values[i] > svd.Values[i-1]+1e-15 {
				t.Fatalf("n=%d: singular values not descending: %v", n, svd.Values)
			}
		}
	}
}

func TestSVDRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	a := matrix.RandomDense(20, 8, rng)
	svd, err := SolveSVD(a, 1, ordering.NewDegree4Family(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := SVDReconstructionError(a, svd); e > 1e-10 {
		t.Errorf("reconstruction error %g", e)
	}
	if svd.U.Rows != 20 || svd.U.Cols != 8 || svd.V.Rows != 8 {
		t.Errorf("shapes U %dx%d V %dx%d", svd.U.Rows, svd.U.Cols, svd.V.Rows, svd.V.Cols)
	}
}

func TestSVDRejectsWide(t *testing.T) {
	if _, err := SolveSVD(matrix.NewDense(2, 5), 0, nil, Options{}); err == nil {
		t.Error("wide matrix accepted")
	}
	if _, err := SolveSVD(matrix.NewDense(2, 0), 0, nil, Options{}); err == nil {
		t.Error("empty matrix accepted")
	}
}

// For symmetric positive definite matrices, singular values equal
// eigenvalues: cross-check the SVD solver against the eigensolver.
func TestSVDMatchesEigenForSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	n := 12
	// Build SPD as B·Bᵀ + I.
	b := matrix.RandomDense(n, n, rng)
	spd := b.Mul(b.Transpose())
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+1)
	}
	eig, err := SolveCyclic(spd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	svd, err := SolveSVD(spd, 0, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// eig.Values ascending, svd.Values descending.
	for i := 0; i < n; i++ {
		want := eig.Values[n-1-i]
		if math.Abs(svd.Values[i]-want) > 1e-8*(1+want) {
			t.Errorf("σ_%d = %g, eigenvalue %g", i, svd.Values[i], want)
		}
	}
}

// The ordering used must not change the spectrum (it only changes rotation
// order).
func TestSVDOrderingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	a := matrix.RandomDense(16, 16, rng)
	ref, err := SolveSVD(a, 2, ordering.NewBRFamily(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []ordering.Family{ordering.NewPermutedBRFamily(), ordering.NewDegree4Family()} {
		got, err := SolveSVD(a, 2, fam, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Values {
			if math.Abs(ref.Values[i]-got.Values[i]) > 1e-9*(1+ref.Values[i]) {
				t.Errorf("%s: σ_%d differs: %g vs %g", fam.Name(), i, got.Values[i], ref.Values[i])
			}
		}
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	a := matrix.NewDense(4, 3)
	svd, err := SolveSVD(a, 0, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range svd.Values {
		if s != 0 {
			t.Errorf("zero matrix has σ = %v", svd.Values)
		}
	}
	if e := SVDReconstructionError(a, svd); e != 0 {
		t.Errorf("reconstruction error %g", e)
	}
}
