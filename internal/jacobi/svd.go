package jacobi

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/ordering"
)

// The one-sided Jacobi method is at heart an SVD algorithm (Hestenes): the
// same column rotations that drive this repository's symmetric eigensolver
// compute the singular value decomposition of an arbitrary (even
// rectangular) matrix. The paper's ordering machinery applies unchanged —
// its reference [7] (Gao & Thomas) is exactly the SVD variant — so the
// solver below rounds out the library: it reuses the engine's rotation
// kernel, block partition and sweep replay.

// SVDResult holds a thin singular value decomposition A = U·diag(Σ)·Vᵀ with
// singular values in descending order.
type SVDResult struct {
	// Values are the singular values, descending.
	Values []float64
	// U is rows×cols with orthonormal columns (left singular vectors).
	U *matrix.Dense
	// V is cols×cols orthogonal (right singular vectors).
	V *matrix.Dense
	// Sweeps, Converged and Rotations mirror EigenResult.
	Sweeps    int
	Converged bool
	Rotations int
}

// svdProblem assembles the engine problem of an SVD solve: the same column
// partition as the eigensolve with rectangular payload — working columns of
// height rows, factor (V) columns of height cols.
func svdProblem(a *matrix.Dense, d int, fam ordering.Family, opts Options, fixedSweeps int, interrupt func() bool) (*engine.Problem, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("jacobi: SVD requires rows >= cols (got %dx%d); pass the transpose", a.Rows, a.Cols)
	}
	if a.Cols == 0 {
		return nil, fmt.Errorf("jacobi: empty matrix")
	}
	blocks, err := engine.BuildFactorBlocks(a, d, a.Cols)
	if err != nil {
		return nil, err
	}
	return &engine.Problem{
		Blocks:      blocks,
		Dim:         d,
		Family:      fam,
		Opts:        opts,
		FixedSweeps: fixedSweeps,
		Rows:        a.Rows,
		FactorRows:  a.Cols,
		TraceGram:   traceGram(a),
		Interrupt:   interrupt,
	}, nil
}

// svdFromOutcome extracts the decomposition from the converged blocks:
// σᵢ = ||wᵢ||, uᵢ = wᵢ/σᵢ, vᵢ accumulated.
func svdFromOutcome(a *matrix.Dense, out *engine.Outcome) *SVDResult {
	res := &SVDResult{
		Sweeps:    out.Sweeps,
		Converged: out.Converged,
		Rotations: out.Rotations,
	}
	type col struct {
		sigma float64
		w, v  []float64
	}
	cols := make([]col, 0, a.Cols)
	for _, b := range out.Blocks {
		for k := range b.Cols {
			cols = append(cols, col{sigma: matrix.Norm2(b.A[k]), w: b.A[k], v: b.U[k]})
		}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].sigma > cols[j].sigma })
	res.Values = make([]float64, a.Cols)
	res.U = matrix.NewDense(a.Rows, a.Cols)
	res.V = matrix.NewDense(a.Cols, a.Cols)
	for i, c := range cols {
		res.Values[i] = c.sigma
		u := res.U.Col(i)
		copy(u, c.w)
		if c.sigma > 0 {
			matrix.Scale(u, 1/c.sigma)
		}
		res.V.SetCol(i, c.v)
	}
	return res
}

// SolveSVD computes the singular value decomposition of a (rows >= cols
// required; transpose first otherwise) by one-sided Jacobi with the given
// parallel ordering replayed sequentially on a virtual d-cube (the engine's
// central path, with rectangular blocks accumulating V). d = 0 gives the
// plain cyclic method.
func SolveSVD(a *matrix.Dense, d int, fam ordering.Family, opts Options) (*SVDResult, error) {
	prob, err := svdProblem(a, d, fam, opts, 0, nil)
	if err != nil {
		return nil, err
	}
	out, err := prob.RunCentral()
	if err != nil {
		return nil, err
	}
	return svdFromOutcome(a, out), nil
}

// SolveSVDParallel computes the same decomposition distributed over the 2^d
// nodes of the configured execution backend. The rotations visit identical
// pairs in identical order on every backend (disjoint columns across nodes
// within a step): the clocked backends run the reference kernels and
// produce bit-identical singular values and factors to SolveSVD's central
// replay, while the multicore backend runs the fused SVD kernels — the
// rotation of the working columns fused with the Gram lookahead, and the
// rectangular V factor rotated in the same kernel call — staying within
// the kernel package's documented ulp bound. Rectangular blocks travel the
// emulated machine's wire format with their true factor height. The
// conformance suite asserts both equivalence classes.
func SolveSVDParallel(a *matrix.Dense, d int, cfg ParallelConfig) (*SVDResult, *machine.RunStats, error) {
	fam := cfg.Family
	if fam == nil {
		fam = ordering.NewBRFamily()
	}
	prob, err := svdProblem(a, d, fam, cfg.Options, cfg.FixedSweeps, cfg.Interrupt)
	if err != nil {
		return nil, nil, err
	}
	out, stats, err := prob.Run(cfg.backend())
	if err != nil {
		return nil, nil, err
	}
	return svdFromOutcome(a, out), stats, nil
}

// SVDReconstructionError returns ||A - U·diag(Σ)·Vᵀ||_F / ||A||_F.
func SVDReconstructionError(a *matrix.Dense, svd *SVDResult) float64 {
	normA := a.FrobeniusNorm()
	if normA == 0 {
		normA = 1
	}
	diff := 0.0
	for j := 0; j < a.Cols; j++ {
		// column j of U·Σ·Vᵀ = Σ_k σ_k·u_k·V[j,k]
		rec := make([]float64, a.Rows)
		for k := 0; k < a.Cols; k++ {
			w := svd.Values[k] * svd.V.At(j, k)
			if w == 0 {
				continue
			}
			matrix.Axpy(w, svd.U.Col(k), rec)
		}
		d := matrix.SubNorm2(rec, a.Col(j))
		diff += d * d
	}
	return math.Sqrt(diff) / normA
}
