package jacobi

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
	"repro/internal/ordering"
)

// The one-sided Jacobi method is at heart an SVD algorithm (Hestenes): the
// same column rotations that drive this repository's symmetric eigensolver
// compute the singular value decomposition of an arbitrary (even
// rectangular) matrix. The paper's ordering machinery applies unchanged —
// its reference [7] (Gao & Thomas) is exactly the SVD variant — so the
// solver below rounds out the library: it reuses the rotation kernel, the
// block partition and the sweep schedules.

// SVDResult holds a thin singular value decomposition A = U·diag(Σ)·Vᵀ with
// singular values in descending order.
type SVDResult struct {
	// Values are the singular values, descending.
	Values []float64
	// U is rows×cols with orthonormal columns (left singular vectors).
	U *matrix.Dense
	// V is cols×cols orthogonal (right singular vectors).
	V *matrix.Dense
	// Sweeps, Converged and Rotations mirror EigenResult.
	Sweeps    int
	Converged bool
	Rotations int
}

// SolveSVD computes the singular value decomposition of a (rows >= cols
// required; transpose first otherwise) by one-sided Jacobi with the given
// parallel ordering replayed sequentially on a virtual d-cube. d = 0 gives
// the plain cyclic method.
func SolveSVD(a *matrix.Dense, d int, fam ordering.Family, opts Options) (*SVDResult, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("jacobi: SVD requires rows >= cols (got %dx%d); pass the transpose", a.Rows, a.Cols)
	}
	if a.Cols == 0 {
		return nil, fmt.Errorf("jacobi: empty matrix")
	}
	if fam == nil {
		fam = ordering.NewBRFamily()
	}
	opts = opts.withDefaults()
	sw, err := ordering.BuildSweep(d, fam)
	if err != nil {
		return nil, err
	}

	// Work on columns of W (initially A) while accumulating V (initially I
	// of size cols). The block machinery expects square U columns, so build
	// the blocks by hand here: the same partition, rectangular payload.
	ranges, err := ordering.BlockRanges(a.Cols, d)
	if err != nil {
		return nil, err
	}
	blocks := make([]*Block, len(ranges))
	for id, r := range ranges {
		b := &Block{ID: id}
		for c := r.Start; c < r.End; c++ {
			wc := make([]float64, a.Rows)
			copy(wc, a.Col(c))
			vc := make([]float64, a.Cols)
			vc[c] = 1
			b.Cols = append(b.Cols, c)
			b.A = append(b.A, wc)
			b.U = append(b.U, vc)
		}
		blocks[id] = b
	}

	st := ordering.NewState(d)
	nodes := 1 << uint(d)
	traceGram := a.FrobeniusNorm()
	traceGram *= traceGram
	res := &SVDResult{}
	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		var conv ConvTracker
		for p := 0; p < nodes; p++ {
			nb := st.Node(p)
			PairWithin(blocks[nb.A], &conv)
			PairWithin(blocks[nb.B], &conv)
		}
		st.RunSweep(sw, sweep, func(step int, cur *ordering.State) {
			for p := 0; p < nodes; p++ {
				nb := cur.Node(p)
				PairCross(blocks[nb.A], blocks[nb.B], &conv)
			}
		})
		res.Sweeps++
		res.Rotations += conv.Rotations
		if opts.converged(conv, traceGram) {
			res.Converged = true
			break
		}
	}

	// Extract: σᵢ = ||wᵢ||, uᵢ = wᵢ/σᵢ, vᵢ accumulated.
	type col struct {
		sigma float64
		w, v  []float64
	}
	cols := make([]col, 0, a.Cols)
	for _, b := range blocks {
		for k := range b.Cols {
			cols = append(cols, col{sigma: matrix.Norm2(b.A[k]), w: b.A[k], v: b.U[k]})
		}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].sigma > cols[j].sigma })
	res.Values = make([]float64, a.Cols)
	res.U = matrix.NewDense(a.Rows, a.Cols)
	res.V = matrix.NewDense(a.Cols, a.Cols)
	for i, c := range cols {
		res.Values[i] = c.sigma
		u := res.U.Col(i)
		copy(u, c.w)
		if c.sigma > 0 {
			matrix.Scale(u, 1/c.sigma)
		}
		res.V.SetCol(i, c.v)
	}
	return res, nil
}

// SVDReconstructionError returns ||A - U·diag(Σ)·Vᵀ||_F / ||A||_F.
func SVDReconstructionError(a *matrix.Dense, svd *SVDResult) float64 {
	normA := a.FrobeniusNorm()
	if normA == 0 {
		normA = 1
	}
	diff := 0.0
	for j := 0; j < a.Cols; j++ {
		// column j of U·Σ·Vᵀ = Σ_k σ_k·u_k·V[j,k]
		rec := make([]float64, a.Rows)
		for k := 0; k < a.Cols; k++ {
			w := svd.Values[k] * svd.V.At(j, k)
			if w == 0 {
				continue
			}
			matrix.Axpy(w, svd.U.Col(k), rec)
		}
		d := matrix.SubNorm2(rec, a.Col(j))
		diff += d * d
	}
	return math.Sqrt(diff) / normA
}
