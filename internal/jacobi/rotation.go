// Package jacobi implements the one-sided Jacobi method for symmetric
// eigenvalue and eigenvector computation (Eberlein [5] in the paper), in
// four flavors that share one rotation kernel:
//
//   - a cyclic sequential baseline,
//   - a schedule-driven sequential solver that replays the exact rotation
//     order of a parallel Jacobi ordering (the numerical reference for the
//     distributed solvers),
//   - a distributed solver running on a pluggable execution backend
//     (emulated hypercube machine, shared-memory multicore, or analytic),
//   - a communication-pipelined distributed solver.
//
// The method works on two matrices: W (initialized to the symmetric input A)
// and U (initialized to I). Each step applies a plane rotation to a pair of
// columns of both so that the columns of W become orthogonal; at convergence
// W = A·U has orthogonal columns and, since U's columns are then eigenvectors
// of A² (= eigenvectors of A away from ±λ degeneracy), the eigenvalues are
// recovered as λᵢ = uᵢᵀwᵢ = uᵢᵀA·uᵢ.
//
// The sweep loop, convergence checks and block pairing live in the engine
// package (internal/engine); the compute kernels live one layer further
// down in internal/kernel, which provides both the retained unfused
// reference path (bit-for-bit the original numerics, run by the emulated
// and analytic backends and every sequential replay) and the fused blocked
// path the multicore backend runs at hardware speed, within a documented
// ulp bound (see the kernel package comment and DESIGN.md, "Kernel
// layer"). The solvers here are thin configuration shims, kept as the
// package's stable API. The kernel and block types are re-exported so
// existing callers and tests keep working.
package jacobi

import (
	"repro/internal/engine"
)

// Rotation is a plane rotation (cosine, sine).
type Rotation = engine.Rotation

// ConvTracker accumulates per-sweep convergence statistics; see
// engine.ConvTracker.
type ConvTracker = engine.ConvTracker

// ComputeRotation returns the one-sided Jacobi rotation that orthogonalizes
// a column pair with Gram entries alpha, beta, gamma; see
// engine.ComputeRotation.
func ComputeRotation(alpha, beta, gamma float64) Rotation {
	return engine.ComputeRotation(alpha, beta, gamma)
}

// RotatePair orthogonalizes columns (ai, aj) of the working matrix, applying
// the same rotation to the corresponding eigenvector columns (ui, uj) — the
// reference rotation kernel shared by the sequential replays and clocked
// backends; see engine.RotatePair.
func RotatePair(ai, aj, ui, uj []float64, conv *ConvTracker) {
	engine.RotatePair(ai, aj, ui, uj, conv)
}

// Scratch is a worker's reusable fused-kernel state; see engine.Scratch
// (= kernel.Scratch).
type Scratch = engine.Scratch
