package jacobi

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/matrix"
)

func TestBuildBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := matrix.RandomSymmetric(10, rng)
	blocks, err := BuildBlocks(a, 1) // 4 blocks: 3,3,2,2 columns
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	sizes := []int{3, 3, 2, 2}
	colSeen := make(map[int]bool)
	for i, b := range blocks {
		if b.ID != i {
			t.Errorf("block %d has ID %d", i, b.ID)
		}
		if b.NumCols() != sizes[i] {
			t.Errorf("block %d has %d cols, want %d", i, b.NumCols(), sizes[i])
		}
		for k, c := range b.Cols {
			colSeen[c] = true
			// A column copied correctly.
			if !reflect.DeepEqual(b.A[k], append([]float64(nil), a.Col(c)...)) {
				t.Errorf("block %d col %d: A mismatch", i, c)
			}
			// U column is the identity column.
			for r, v := range b.U[k] {
				want := 0.0
				if r == c {
					want = 1
				}
				if v != want {
					t.Errorf("block %d col %d: U[%d] = %g", i, c, r, v)
				}
			}
		}
	}
	if len(colSeen) != 10 {
		t.Errorf("covered %d columns", len(colSeen))
	}
	if _, err := BuildBlocks(matrix.NewDense(3, 4), 1); err == nil {
		t.Error("non-square accepted")
	}
}

func TestGatherInvertsBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := matrix.RandomSymmetric(8, rng)
	blocks, err := BuildBlocks(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := matrix.NewDense(8, 8)
	u := matrix.NewDense(8, 8)
	Gather(blocks, w, u)
	if !w.Equal(a, 0) {
		t.Error("gathered W differs from A")
	}
	if !u.Equal(matrix.Identity(8), 0) {
		t.Error("gathered U differs from I")
	}
}

func TestEncodeDecodeBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := matrix.RandomSymmetric(6, rng)
	blocks, err := BuildBlocks(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		msg := EncodeBlock(b, 6)
		got, err := DecodeBlock(msg, 6)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != b.ID || !reflect.DeepEqual(got.Cols, b.Cols) ||
			!reflect.DeepEqual(got.A, b.A) || !reflect.DeepEqual(got.U, b.U) {
			t.Errorf("block %d did not round-trip", b.ID)
		}
	}
}

func TestDecodeBlockErrors(t *testing.T) {
	if _, err := DecodeBlock([]float64{1}, 4); err == nil {
		t.Error("short message accepted")
	}
	if _, err := DecodeBlock([]float64{0, 2, 0}, 4); err == nil {
		t.Error("truncated message accepted")
	}
}

// Pairing functions perform exactly the expected number of pair visits.
func TestPairCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := matrix.RandomSymmetric(12, rng)
	blocks, err := BuildBlocks(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	var conv ConvTracker
	PairWithin(blocks[0], &conv) // 3 columns -> 3 pairs
	if conv.Pairs != 3 {
		t.Errorf("PairWithin visited %d pairs, want 3", conv.Pairs)
	}
	conv = ConvTracker{}
	PairCross(blocks[0], blocks[1], &conv) // 3x3
	if conv.Pairs != 9 {
		t.Errorf("PairCross visited %d pairs, want 9", conv.Pairs)
	}
	conv = ConvTracker{}
	PairCrossSlice(blocks[0], blocks[1], 1, 3, &conv) // 3x2
	if conv.Pairs != 6 {
		t.Errorf("PairCrossSlice visited %d pairs, want 6", conv.Pairs)
	}
}

// PairCross then PairCrossSlice over the full range perform the same
// rotations: slicing is a pure partition of the iteration space.
func TestPairCrossSlicePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := matrix.RandomSymmetric(12, rng)
	b1, err := BuildBlocks(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := BuildBlocks(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2 ConvTracker
	PairCross(b1[0], b1[1], &c1)
	for j := 0; j < b2[1].NumCols(); j++ {
		PairCrossSlice(b2[0], b2[1], j, j+1, &c2)
	}
	if !reflect.DeepEqual(b1[0].A, b2[0].A) || !reflect.DeepEqual(b1[1].A, b2[1].A) {
		t.Error("sliced pairing diverged from full pairing")
	}
	if c1.Rotations != c2.Rotations {
		t.Errorf("rotation counts differ: %d vs %d", c1.Rotations, c2.Rotations)
	}
}
