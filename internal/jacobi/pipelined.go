package jacobi

import (
	"fmt"

	"repro/internal/ccube"
	"repro/internal/costmodel"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/ordering"
)

// SolveParallelPipelined runs the distributed one-sided Jacobi solver with
// communication pipelining (section 2.4 of the paper and [9]) applied to
// every exchange phase: each iteration's moving block is split into Q
// column-slice packets, and each pipeline stage computes the packets on its
// anti-diagonal and ships them through multiple links at once as a single
// multi-port communication operation, with same-link packets combined.
// Division steps and the last transition stay unpipelined, exactly as in the
// paper's model.
//
// With Q = 1 the stage order degenerates to the unpipelined iteration order,
// and the solver produces bit-identical results to SolveParallel (tests
// assert this). For Q > 1 the rotation order inside a phase is reorganized
// (packets execute along stage anti-diagonals — an inherent property of the
// transformation, DESIGN.md note 11), so results match to convergence
// tolerance rather than bitwise; every column pair is still rotated exactly
// once per sweep.
func SolveParallelPipelined(a *matrix.Dense, d int, cfg ParallelConfig) (*EigenResult, *machine.RunStats, error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("jacobi: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	if cfg.Family == nil {
		cfg.Family = ordering.NewBRFamily()
	}
	opts := cfg.Options.withDefaults()
	blocks, err := BuildBlocks(a, d)
	if err != nil {
		return nil, nil, err
	}
	mach, err := machine.New(cfg.machineConfig(d))
	if err != nil {
		return nil, nil, err
	}
	m := a.Rows
	traceGram := a.FrobeniusNorm()
	traceGram *= traceGram

	// The pipelining degree is bounded by the smallest block's column count
	// (packets are column groups).
	ranges, err := ordering.BlockRanges(m, d)
	if err != nil {
		return nil, nil, err
	}
	minCols := m
	for _, r := range ranges {
		if r.Len() < minCols {
			minCols = r.Len()
		}
	}
	if minCols < 1 {
		minCols = 1
	}

	// Pick the pipelining degree per exchange phase once, identically on
	// every node (the choice only depends on shared configuration).
	phaseQ := make([]int, d+1)
	for e := 1; e <= d; e++ {
		if cfg.PipelineQ > 0 {
			phaseQ[e] = min(cfg.PipelineQ, minCols)
			continue
		}
		seq := cfg.Family.Phase(e)
		res := ccube.OptimalPhaseQ(seq, costmodel.BlockElems(float64(m), d), minCols,
			ccube.CostParams{Ts: cfg.Ts, Tw: cfg.Tw, Ports: int(cfg.Ports)})
		phaseQ[e] = res.Q
	}

	outcomes := make([]nodeOutcome, mach.Nodes())

	program := func(ctx *machine.NodeCtx) error {
		p := ctx.ID()
		slotA, slotB := blocks[2*p], blocks[2*p+1]
		out := &outcomes[p]
		for sweep := 0; ; sweep++ {
			var conv ConvTracker
			PairWithin(slotA, &conv)
			PairWithin(slotB, &conv)
			ctx.Compute(pairFlops(m, within(slotA)+within(slotB)))
			for e := d; e >= 1; e-- {
				nb, err := runPipelinedPhase(ctx, cfg.Family.Phase(e), phaseQ[e], sweep, d, slotA, slotB, m, &conv)
				if err != nil {
					return fmt.Errorf("sweep %d phase %d: %w", sweep, e, err)
				}
				slotB = nb
				// Division step pairing, then the division transition.
				PairCross(slotA, slotB, &conv)
				ctx.Compute(pairFlops(m, slotA.NumCols()*slotB.NumCols()))
				phys := ordering.SweepLink(e-1, sweep, d)
				slotA, slotB, err = transitionExchange(ctx, ordering.DivisionTrans, phys, slotA, slotB, m)
				if err != nil {
					return fmt.Errorf("sweep %d division %d: %w", sweep, e, err)
				}
			}
			// Last step and last transition.
			PairCross(slotA, slotB, &conv)
			ctx.Compute(pairFlops(m, slotA.NumCols()*slotB.NumCols()))
			if d >= 1 {
				phys := ordering.SweepLink(d-1, sweep, d)
				var err error
				slotA, slotB, err = transitionExchange(ctx, ordering.LastTrans, phys, slotA, slotB, m)
				if err != nil {
					return fmt.Errorf("sweep %d last transition: %w", sweep, err)
				}
			}
			out.sweeps = sweep + 1
			out.rotations += conv.Rotations
			done, global, err := sweepDecision(ctx, conv, opts, traceGram, cfg.FixedSweeps, sweep)
			if err != nil {
				return err
			}
			out.finalRel = global.MaxRel
			if done.converged {
				out.converged = true
			}
			if done.stop {
				break
			}
		}
		out.blocks = [2]*Block{slotA, slotB}
		return nil
	}

	stats, err := mach.Run(program)
	if err != nil {
		return nil, nil, err
	}
	w := matrix.NewDense(m, m)
	u := matrix.NewDense(m, m)
	res := &EigenResult{
		Sweeps:      outcomes[0].sweeps,
		Converged:   outcomes[0].converged,
		FinalMaxRel: outcomes[0].finalRel,
	}
	for _, out := range outcomes {
		res.Rotations += out.rotations
		for _, b := range out.blocks {
			if b == nil {
				return nil, nil, fmt.Errorf("jacobi: node finished without blocks")
			}
			for k, c := range b.Cols {
				w.SetCol(c, b.A[k])
				u.SetCol(c, b.U[k])
			}
		}
	}
	finishEigen(a, w, u, res)
	return res, stats, nil
}

// runPipelinedPhase executes one exchange phase under the pipelined CC-cube
// schedule and returns the node's new moving block (the fully assembled
// block received through the phase's final exchanges).
//
// Data flow per stage s: for each packet (k,q) on the stage's anti-diagonal
// (ascending k, preserving per-node sequential semantics) the node pairs its
// stationary block against slice q of moving block b_k — slice views for
// k = 1, received slices for k > 1 — then ships the updated slice through
// the physical link of iteration k, combined per link. The symmetric
// receive delivers the neighbor's slice (k,q), which is slice q of this
// node's next moving block b_{k+1}.
func runPipelinedPhase(ctx *machine.NodeCtx, seq []int, q, sweep, d int, slotA, slotB *Block, m int, conv *ConvTracker) (*Block, error) {
	sched, err := ccube.Build(seq, q)
	if err != nil {
		return nil, err
	}
	k := len(seq)
	// Slices of moving block b_k: cur[1] = views into slotB; incoming
	// blocks are assembled slice by slice as packets arrive.
	slices := make(map[int][]*Block, k+1)
	slices[1] = SplitBlock(slotB, q)
	for _, st := range sched.Stages {
		// Compute this stage's packets in ascending-iteration order.
		for _, pk := range st.Packets {
			group := slices[pk.K]
			if group == nil || group[pk.Q-1] == nil {
				return nil, fmt.Errorf("stage %d: slice (%d,%d) not available", st.Index, pk.K, pk.Q)
			}
			sl := group[pk.Q-1]
			PairCross(slotA, sl, conv)
			ctx.Compute(pairFlops(m, slotA.NumCols()*sl.NumCols()))
		}
		// One multi-port communication operation: per distinct link, the
		// combined message of this stage's same-link packets.
		links := make([]int, 0, len(st.Sends))
		payloads := make([][]float64, 0, len(st.Sends))
		for _, send := range st.Sends {
			group := make([]*Block, 0, len(send.Packets))
			for _, pk := range send.Packets {
				group = append(group, slices[pk.K][pk.Q-1])
			}
			links = append(links, ordering.SweepLink(send.Link, sweep, d))
			payloads = append(payloads, EncodeBlocks(group, m))
		}
		got, err := ctx.ExchangeBatch(links, payloads)
		if err != nil {
			return nil, fmt.Errorf("stage %d: %w", st.Index, err)
		}
		// The neighbor executed the same stage shape: its packet (k,q)
		// slice is slice q of our incoming block b_{k+1}.
		for i, send := range st.Sends {
			decoded, err := DecodeBlocks(got[i], m)
			if err != nil {
				return nil, fmt.Errorf("stage %d link %d: %w", st.Index, send.Link, err)
			}
			if len(decoded) != len(send.Packets) {
				return nil, fmt.Errorf("stage %d link %d: %d slices, want %d", st.Index, send.Link, len(decoded), len(send.Packets))
			}
			for j, pk := range send.Packets {
				if slices[pk.K+1] == nil {
					slices[pk.K+1] = make([]*Block, q)
				}
				slices[pk.K+1][pk.Q-1] = decoded[j]
			}
		}
	}
	next := slices[k+1]
	for qi, sl := range next {
		if sl == nil {
			return nil, fmt.Errorf("phase end: slice %d of final block missing", qi+1)
		}
	}
	return AssembleBlock(next), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
