package jacobi

import (
	"repro/internal/machine"
	"repro/internal/matrix"
)

// SolveParallelPipelined runs the distributed one-sided Jacobi solver with
// communication pipelining (section 2.4 of the paper and [9]) applied to
// every exchange phase: each iteration's moving block is split into Q
// column-slice packets, and each pipeline stage computes the packets on its
// anti-diagonal and ships them through multiple links at once as a single
// multi-port communication operation, with same-link packets combined.
// Division steps and the last transition stay unpipelined, exactly as in the
// paper's model. The stage-structured sweep loop lives in the engine
// (Problem.Run with Pipelined set) and works on any backend that supports
// multi-port slice exchange — all three do.
//
// With Q = 1 the stage order degenerates to the unpipelined iteration order,
// and the solver produces bit-identical results to SolveParallel (tests
// assert this). For Q > 1 the rotation order inside a phase is reorganized
// (packets execute along stage anti-diagonals — an inherent property of the
// transformation, DESIGN.md note 11), so results match to convergence
// tolerance rather than bitwise; every column pair is still rotated exactly
// once per sweep.
func SolveParallelPipelined(a *matrix.Dense, d int, cfg ParallelConfig) (*EigenResult, *machine.RunStats, error) {
	prob, err := cfg.problem(a, d, true)
	if err != nil {
		return nil, nil, err
	}
	out, stats, err := prob.Run(cfg.backend())
	if err != nil {
		return nil, nil, err
	}
	return gatherEigen(a, out), stats, nil
}
