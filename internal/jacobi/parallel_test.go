package jacobi

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/ordering"
)

func parCfg(fam ordering.Family) ParallelConfig {
	return ParallelConfig{
		Family: fam,
		Ts:     1000,
		Tw:     100,
	}
}

// The distributed solver must produce results bit-identical to the
// schedule-driven sequential replay: the same rotations in the same global
// order (disjoint columns across nodes within a step), with the
// order-independent MaxRel criterion.
func TestSolveParallelBitIdenticalToSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cases := []struct{ m, d int }{
		{8, 1}, {16, 2}, {12, 1}, {16, 3}, {10, 2},
	}
	for _, c := range cases {
		a := matrix.RandomSymmetric(c.m, rng)
		for _, fam := range []ordering.Family{ordering.NewBRFamily(), ordering.NewDegree4Family()} {
			ref, err := SolveSchedule(a, c.d, fam, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := SolveParallel(a, c.d, parCfg(fam))
			if err != nil {
				t.Fatalf("m=%d d=%d %s: %v", c.m, c.d, fam.Name(), err)
			}
			if got.Sweeps != ref.Sweeps {
				t.Errorf("m=%d d=%d %s: sweeps %d vs %d", c.m, c.d, fam.Name(), got.Sweeps, ref.Sweeps)
			}
			for i := range ref.Values {
				if got.Values[i] != ref.Values[i] {
					t.Fatalf("m=%d d=%d %s: eigenvalue %d differs: %g vs %g (should be bit-identical)",
						c.m, c.d, fam.Name(), i, got.Values[i], ref.Values[i])
				}
			}
			if !got.Vectors.Equal(ref.Vectors, 0) {
				t.Errorf("m=%d d=%d %s: eigenvectors not bit-identical", c.m, c.d, fam.Name())
			}
		}
	}
}

func TestSolveParallelResidualAndOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	a := matrix.RandomSymmetric(24, rng)
	res, stats, err := SolveParallel(a, 2, parCfg(ordering.NewPermutedBRFamily()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if r := matrix.EigenResidual(a, res.Values, res.Vectors); r > 1e-8 {
		t.Errorf("residual %g", r)
	}
	if o := matrix.OrthogonalityError(res.Vectors); o > 1e-10 {
		t.Errorf("orthogonality %g", o)
	}
	if stats.Makespan <= 0 {
		t.Error("no virtual time accumulated")
	}
	if stats.Messages == 0 {
		t.Error("no messages counted")
	}
}

// FixedSweeps mode runs exactly the requested sweeps without convergence
// reductions, so the message count is exactly nodes * transitions * sweeps.
func TestSolveParallelFixedSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	a := matrix.RandomSymmetric(16, rng)
	d := 2
	cfg := parCfg(ordering.NewBRFamily())
	cfg.FixedSweeps = 3
	res, stats, err := SolveParallel(a, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps != 3 {
		t.Errorf("sweeps = %d, want 3", res.Sweeps)
	}
	nodes := 1 << uint(d)
	transitions := 2*(1<<uint(d)) - 1
	want := nodes * transitions * 3
	if stats.Messages != want {
		t.Errorf("messages = %d, want %d", stats.Messages, want)
	}
}

// The virtual-time makespan of a fixed-sweep unpipelined run must equal the
// analytic baseline sweep cost times the sweep count (the machine implements
// exactly the model's Ts/Tw accounting; convergence reductions are off).
func TestSolveParallelMakespanMatchesAnalyticBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for _, c := range []struct{ m, d int }{{16, 1}, {16, 2}, {32, 2}, {32, 3}} {
		a := matrix.RandomSymmetric(c.m, rng)
		cfg := parCfg(ordering.NewBRFamily())
		cfg.FixedSweeps = 2
		_, stats, err := SolveParallel(a, c.d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Analytic: transitions * (Ts + S*Tw) per sweep, S = 2*(m/2^(d+1))*m.
		nb := float64(int(2) << uint(c.d))
		s := 2.0 * float64(c.m) / nb * float64(c.m)
		perBlockMsg := s + 2 + float64(c.m)/nb // encoding adds id, ncols, col indices
		transitions := float64(2*(int(1)<<uint(c.d)) - 1)
		want := 2 * transitions * (1000 + perBlockMsg*100)
		rel := (stats.Makespan - want) / want
		if rel < -0.01 || rel > 0.01 {
			t.Errorf("m=%d d=%d: makespan %g, analytic %g (rel err %.3f)", c.m, c.d, stats.Makespan, want, rel)
		}
	}
}

// Uneven block sizes (m not divisible by 2^(d+1)) must work end-to-end.
func TestSolveParallelUnevenBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	a := matrix.RandomSymmetric(13, rng)
	res, _, err := SolveParallel(a, 2, parCfg(ordering.NewBRFamily()))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SolveCyclic(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.SortedEigenvalueDistance(res.Values, ref.Values); d > 1e-8 {
		t.Errorf("spectra differ by %g", d)
	}
}

// One-port configuration must yield a strictly larger makespan than all-port
// for the same pipelined workload, and identical numerics.
func TestSolveParallelPortModelCost(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	a := matrix.RandomSymmetric(16, rng)
	cfgAll := parCfg(ordering.NewDegree4Family())
	cfgAll.FixedSweeps = 2
	cfgAll.PipelineQ = 2
	cfgOne := cfgAll
	cfgOne.Ports = machine.OnePort

	resAll, statsAll, err := SolveParallelPipelined(a, 2, cfgAll)
	if err != nil {
		t.Fatal(err)
	}
	resOne, statsOne, err := SolveParallelPipelined(a, 2, cfgOne)
	if err != nil {
		t.Fatal(err)
	}
	if statsOne.Makespan <= statsAll.Makespan {
		t.Errorf("one-port makespan %g should exceed all-port %g", statsOne.Makespan, statsAll.Makespan)
	}
	for i := range resAll.Values {
		if resAll.Values[i] != resOne.Values[i] {
			t.Fatal("port model changed numerics")
		}
	}
}
