package jacobi

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/ordering"
)

// LaneRequest is one job riding a batched solve lane: its input matrix
// plus the per-job sweep-loop hooks the service wires in. All requests in
// a lane must share the matrix size (the scheduler's shape fingerprint
// guarantees it; SolveLane re-validates).
type LaneRequest struct {
	// A is the symmetric input matrix.
	A *matrix.Dense
	// Options are this job's numerical options.
	Options Options
	// FixedSweeps, when positive, runs exactly that many sweeps for this
	// job regardless of convergence.
	FixedSweeps int
	// Interrupt is polled at this job's sweep boundaries; true stops only
	// this lane member (see engine.LaneJob.Interrupt). The service wires
	// it to the job's context.
	Interrupt func() bool
	// OnSweep receives this job's per-sweep progress.
	OnSweep func(engine.SweepProgress)
	// OnCheckpoint receives this job's sweep-boundary checkpoints every
	// CheckpointEvery sweeps — standard engine checkpoints, restorable on
	// any solo path (a lane checkpoint is K independent job checkpoints).
	OnCheckpoint    func(*engine.Checkpoint)
	CheckpointEvery int
}

// SolveLane solves the requests together on the batched execution lane:
// K same-size problems advanced in SIMD lockstep through one (d, fam)
// sweep schedule by a single goroutine (engine.BatchedBackend). Each job
// keeps its own convergence decision; converged jobs sit bit-frozen in
// masked lanes while the rest sweep on. With reference set the lane runs
// the generic batched reference kernels and each job's result is
// bit-identical to SolveSchedule on the same inputs; otherwise the lane
// runs the fused SIMD kernels under the documented ulp contract.
func SolveLane(d int, fam ordering.Family, reference bool, reqs []*LaneRequest) ([]*EigenResult, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("jacobi: empty lane")
	}
	m := reqs[0].A.Rows
	jobs := make([]*engine.LaneJob, len(reqs))
	for i, r := range reqs {
		if r.A.Rows != r.A.Cols {
			return nil, fmt.Errorf("jacobi: lane request %d is %dx%d, want square", i, r.A.Rows, r.A.Cols)
		}
		if r.A.Rows != m {
			return nil, fmt.Errorf("jacobi: lane request %d is %dx%d, lane is %dx%d", i, r.A.Rows, r.A.Cols, m, m)
		}
		blocks, err := BuildBlocks(r.A, d)
		if err != nil {
			return nil, err
		}
		jobs[i] = &engine.LaneJob{
			Blocks:          blocks,
			Opts:            r.Options,
			Rows:            r.A.Rows,
			FixedSweeps:     r.FixedSweeps,
			TraceGram:       traceGram(r.A),
			Interrupt:       r.Interrupt,
			OnSweep:         r.OnSweep,
			OnCheckpoint:    r.OnCheckpoint,
			CheckpointEvery: r.CheckpointEvery,
		}
	}
	backend := &engine.BatchedBackend{ReferenceKernels: reference}
	outs, err := backend.RunLane(d, fam, jobs)
	if err != nil {
		return nil, err
	}
	results := make([]*EigenResult, len(reqs))
	for i, out := range outs {
		results[i] = gatherEigen(reqs[i].A, out)
	}
	return results, nil
}
