package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchRegressionGuard is the CI regression gate. It assembles the
// trajectory from the repository's committed BENCH_*.json files plus any
// fresh reports named in BENCH_GUARD_NEW (colon-separated paths, appended
// in order), then:
//
//   - compares the two newest reports with the portable guards (allocs,
//     speedup ratio);
//   - when BENCH_GUARD_NEW supplies two or more fresh reports — CI runs the
//     bench twice on the same host — additionally applies the wall-clock
//     guards to that same-host pair.
//
// With fewer than two reports in total the test skips (a fresh clone with
// one committed snapshot has nothing to compare).
func TestBenchRegressionGuard(t *testing.T) {
	reports, err := LoadDir(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	var fresh []*Report
	if env := os.Getenv("BENCH_GUARD_NEW"); env != "" {
		for _, p := range strings.Split(env, ":") {
			if p == "" {
				continue
			}
			r, err := Load(p)
			if err != nil {
				t.Fatalf("BENCH_GUARD_NEW: %v", err)
			}
			fresh = append(fresh, r)
		}
		reports = append(reports, fresh...)
	}
	if len(reports) < 2 {
		t.Skipf("only %d bench report(s) available, nothing to compare", len(reports))
	}
	prev, cur := reports[len(reports)-2], reports[len(reports)-1]
	t.Logf("comparing %s -> %s", prev.Path, cur.Path)
	for _, msg := range Compare(prev, cur, false) {
		t.Error(msg)
	}
	if len(fresh) >= 2 {
		p, c := fresh[len(fresh)-2], fresh[len(fresh)-1]
		t.Logf("same-host pair %s -> %s", p.Path, c.Path)
		for _, msg := range Compare(p, c, true) {
			t.Error(msg)
		}
	}
}

// repoRoot walks up from the package directory to the module root (where
// the BENCH_*.json trajectory lives, next to go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// TestCompareGuards pins the guard semantics on synthetic reports.
func TestCompareGuards(t *testing.T) {
	base := &Report{
		MulticoreWallMs:    100,
		EmulatedWallMs:     400,
		Speedup:            4.0,
		MulticoreNsPerPair: 500,
		SweepAllocsPerOp:   0,
	}
	clone := func(mut func(*Report)) *Report {
		r := *base
		mut(&r)
		return &r
	}

	if bad := Compare(base, clone(func(r *Report) {}), true); len(bad) != 0 {
		t.Errorf("identical reports flagged: %v", bad)
	}
	// Any allocation in the sweep inner loop fails, portable mode included.
	if bad := Compare(base, clone(func(r *Report) { r.SweepAllocsPerOp = 1 }), false); len(bad) != 1 {
		t.Errorf("alloc increase not flagged: %v", bad)
	}
	// Speedup regression beyond tolerance fails portably.
	if bad := Compare(base, clone(func(r *Report) { r.Speedup = 2.0 }), false); len(bad) != 1 {
		t.Errorf("speedup regression not flagged: %v", bad)
	}
	// Small speedup wobble passes.
	if bad := Compare(base, clone(func(r *Report) { r.Speedup = 3.5 }), false); len(bad) != 0 {
		t.Errorf("speedup wobble flagged: %v", bad)
	}
	// Wall-clock regression only fails in same-host mode.
	slow := clone(func(r *Report) { r.MulticoreWallMs = 150; r.MulticoreNsPerPair = 750 })
	if bad := Compare(base, slow, false); len(bad) != 0 {
		t.Errorf("cross-host wall regression flagged: %v", bad)
	}
	if bad := Compare(base, slow, true); len(bad) != 2 {
		t.Errorf("same-host wall regression not fully flagged: %v", bad)
	}
	// 10%-boundary wobble passes same-host.
	if bad := Compare(base, clone(func(r *Report) { r.MulticoreWallMs = 108 }), true); len(bad) != 0 {
		t.Errorf("within-tolerance wall wobble flagged: %v", bad)
	}

	// Lane guards only arm when the report carries lane numbers; old
	// reports (zero lane fields) stay clean.
	if bad := Compare(base, clone(func(r *Report) {}), false); len(bad) != 0 {
		t.Errorf("lane guards armed on pre-lane report: %v", bad)
	}
	withLane := func(lane, unbatched, allocs float64) *Report {
		return clone(func(r *Report) {
			r.BatchLaneJobsPerSec = lane
			r.BatchUnbatchedJobsPerSec = unbatched
			r.LaneAllocsPerOp = allocs
		})
	}
	// A healthy lane report passes.
	if bad := Compare(base, withLane(300, 150, 0), false); len(bad) != 0 {
		t.Errorf("healthy lane report flagged: %v", bad)
	}
	// The lane inner loop must never allocate.
	if bad := Compare(base, withLane(300, 150, 1), false); len(bad) != 1 {
		t.Errorf("lane alloc not flagged: %v", bad)
	}
	// The lane must beat unbatched solves by LaneMinAdvantage, same host by
	// construction (both rates come from one run).
	if bad := Compare(base, withLane(200, 150, 0), false); len(bad) != 1 {
		t.Errorf("thin lane advantage not flagged: %v", bad)
	}
}
