// Package bench is the bench-regression harness: it loads the repository's
// BENCH_*.json trajectory files (written by `jacobitool bench -json`) and
// exposes the comparison the regression-guard test enforces in CI.
//
// Two kinds of comparison, because wall-clock numbers only compare within
// one host:
//
//   - portable guards run on any pair of reports: the sweep inner loop must
//     stay allocation-free and the multicore-vs-emulated speedup must not
//     regress by more than the tolerance (both are host-size-free ratios);
//   - same-host guards additionally bound the multicore wall-clock and
//     ns/pair regression; CI produces a same-host pair by running the bench
//     twice and the guard test reads them via the BENCH_GUARD_NEW
//     environment variable.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Report mirrors the fields of jacobitool's bench JSON that the guard
// consumes; unknown fields are ignored so the formats can grow
// independently.
type Report struct {
	Date               string  `json:"date"`
	MatrixSize         int     `json:"matrix_size"`
	Dim                int     `json:"dim"`
	EmulatedWallMs     float64 `json:"emulated_wall_ms"`
	MulticoreWallMs    float64 `json:"multicore_wall_ms"`
	Speedup            float64 `json:"speedup"`
	MulticoreNsPerPair float64 `json:"multicore_ns_per_pair"`
	SweepAllocsPerOp   float64 `json:"sweep_allocs_per_op"`

	// Batched-lane metrics (reports predating the lane leave them zero,
	// which disables the lane guards for that pair).
	LaneWidth                int     `json:"lane_width"`
	BatchJobsPerSec          float64 `json:"batch_jobs_per_sec"`
	BatchUnbatchedJobsPerSec float64 `json:"batch_unbatched_jobs_per_sec"`
	BatchLaneJobsPerSec      float64 `json:"batch_lane_jobs_per_sec"`
	LaneAllocsPerOp          float64 `json:"lane_allocs_per_op"`

	// Path records where the report was loaded from (not part of the JSON).
	Path string `json:"-"`
}

// Load reads one report.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	r.Path = path
	return &r, nil
}

// LoadDir returns every BENCH_*.json in dir, sorted ascending by file name
// (the names embed the ISO date, so name order is trajectory order).
func LoadDir(dir string) ([]*Report, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Report, 0, len(paths))
	for _, p := range paths {
		r, err := Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Tolerances of the guard: relative regression allowed before failing.
const (
	// WallTol is the same-host wall-clock and ns/pair tolerance (10%).
	WallTol = 0.10
	// SpeedupTol is the portable speedup-ratio tolerance. Looser than
	// WallTol: the ratio moves with host core count as well as kernel
	// speed, and cross-host comparisons must not flap.
	SpeedupTol = 0.25
	// LaneMinAdvantage is the floor on the lane-vs-unbatched throughput
	// ratio: both rates come from the same run on the same host, so the
	// ratio is host-size-free — the lane must beat solving the same jobs
	// unbatched by at least this factor or it has lost its reason to
	// exist.
	LaneMinAdvantage = 1.5
)

// Compare checks cur against prev and returns every violated guard.
// sameHost enables the wall-clock guards.
func Compare(prev, cur *Report, sameHost bool) []string {
	var bad []string
	if cur.SweepAllocsPerOp > prev.SweepAllocsPerOp || cur.SweepAllocsPerOp > 0 {
		bad = append(bad, fmt.Sprintf("sweep inner loop allocates: %.2f allocs/op (previous %.2f)",
			cur.SweepAllocsPerOp, prev.SweepAllocsPerOp))
	}
	if prev.Speedup > 0 && cur.Speedup < prev.Speedup*(1-SpeedupTol) {
		bad = append(bad, fmt.Sprintf("multicore speedup regressed: %.2fx -> %.2fx (tolerance %.0f%%)",
			prev.Speedup, cur.Speedup, SpeedupTol*100))
	}
	// Lane guards: intra-report, so they are portable. A report carrying
	// lane numbers must show an allocation-free lane inner loop and a lane
	// that actually pays for its gather complexity.
	if cur.BatchLaneJobsPerSec > 0 {
		if cur.LaneAllocsPerOp > 0 {
			bad = append(bad, fmt.Sprintf("lane inner loop allocates: %.2f allocs/op", cur.LaneAllocsPerOp))
		}
		if cur.BatchUnbatchedJobsPerSec > 0 &&
			cur.BatchLaneJobsPerSec < cur.BatchUnbatchedJobsPerSec*LaneMinAdvantage {
			bad = append(bad, fmt.Sprintf("lane throughput advantage below %.1fx: %.1f lane vs %.1f unbatched jobs/sec",
				LaneMinAdvantage, cur.BatchLaneJobsPerSec, cur.BatchUnbatchedJobsPerSec))
		}
	}
	if sameHost {
		if prev.MulticoreWallMs > 0 && cur.MulticoreWallMs > prev.MulticoreWallMs*(1+WallTol) {
			bad = append(bad, fmt.Sprintf("multicore wall-clock regressed: %.1fms -> %.1fms (tolerance %.0f%%)",
				prev.MulticoreWallMs, cur.MulticoreWallMs, WallTol*100))
		}
		if prev.MulticoreNsPerPair > 0 && cur.MulticoreNsPerPair > prev.MulticoreNsPerPair*(1+WallTol) {
			bad = append(bad, fmt.Sprintf("multicore ns/pair regressed: %.0f -> %.0f (tolerance %.0f%%)",
				prev.MulticoreNsPerPair, cur.MulticoreNsPerPair, WallTol*100))
		}
	}
	return bad
}
