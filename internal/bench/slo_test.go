package bench

import (
	"os"
	"strconv"
	"testing"
)

// TestLoadSLOGate is the CI latency gate: the loadgen smoke step writes a
// report and points LOADGEN_REPORT at it; LOADGEN_P99_SLO_MS sets the done-
// outcome p99 bound (unset or 0 checks only the structural SLOs — zero
// lost terminal events, at least one completion). Without a report the
// test skips, so plain `go test ./...` stays green on a fresh clone.
func TestLoadSLOGate(t *testing.T) {
	path := os.Getenv("LOADGEN_REPORT")
	if path == "" {
		t.Skip("LOADGEN_REPORT not set; run `jacobitool loadgen -out` first")
	}
	r, err := LoadLoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	bound := 0.0
	if env := os.Getenv("LOADGEN_P99_SLO_MS"); env != "" {
		if bound, err = strconv.ParseFloat(env, 64); err != nil {
			t.Fatalf("LOADGEN_P99_SLO_MS: %v", err)
		}
	}
	t.Logf("%s: %d attempted, %d accepted (%d quota / %d rate / %d queue rejected), %d done, %d failed, %d canceled (%d shed), %d lost",
		path, r.Attempted, r.Submitted, r.RejectedQuota, r.RejectedRate, r.RejectedQueue,
		r.Done, r.Failed, r.Canceled, r.Shed, r.LostTerminal)
	if done, ok := r.Outcomes["done"]; ok {
		t.Logf("done latency: p50 %.1fms, p99 %.1fms, max %.1fms (bound %.0fms)", done.P50Ms, done.P99Ms, done.MaxMs, bound)
	}
	for _, msg := range CheckLoadSLO(r, bound) {
		t.Error(msg)
	}
}

// TestCheckLoadSLO pins the gate semantics on synthetic reports.
func TestCheckLoadSLO(t *testing.T) {
	base := &LoadReport{
		Submitted: 10, Done: 8, Failed: 1, Canceled: 1,
		Outcomes: map[string]LoadLatency{"done": {Count: 8, P50Ms: 5, P99Ms: 40, MaxMs: 50}},
	}
	clone := func(mut func(*LoadReport)) *LoadReport {
		r := *base
		mut(&r)
		return &r
	}
	if bad := CheckLoadSLO(base, 100); len(bad) != 0 {
		t.Errorf("healthy report flagged: %v", bad)
	}
	if bad := CheckLoadSLO(base, 0); len(bad) != 0 {
		t.Errorf("unset bound flagged latency: %v", bad)
	}
	if bad := CheckLoadSLO(clone(func(r *LoadReport) { r.LostTerminal = 1; r.Done = 7 }), 100); len(bad) != 1 {
		t.Errorf("lost terminal not flagged exactly once: %v", bad)
	}
	if bad := CheckLoadSLO(clone(func(r *LoadReport) { r.Done = 0; r.Canceled = 9 }), 100); len(bad) != 1 {
		t.Errorf("zero completions not flagged: %v", bad)
	}
	if bad := CheckLoadSLO(base, 30); len(bad) != 1 {
		t.Errorf("p99 over bound not flagged: %v", bad)
	}
	if bad := CheckLoadSLO(clone(func(r *LoadReport) { r.Submitted = 12 }), 100); len(bad) != 1 {
		t.Errorf("accounting hole not flagged: %v", bad)
	}
}
