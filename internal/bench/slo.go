package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// The load-SLO side of the harness: `jacobitool loadgen` drives a service
// with an open-loop Poisson arrival process and writes a LoadReport; the
// SLO gate test (slo_test.go) reads it in CI and fails the build when the
// latency bound is exceeded or any watcher lost its terminal event. The
// report type lives here so the generator and the gate share one schema.

// LoadLatency is one terminal outcome's client-observed latency summary
// (submit acknowledgment to terminal event, milliseconds).
type LoadLatency struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// LoadReport is the JSON document `jacobitool loadgen` emits.
type LoadReport struct {
	Date        string  `json:"date"`
	Target      string  `json:"target"` // "local" or the remote URL
	OfferedRate float64 `json:"offered_rate"`
	DurationSec float64 `json:"duration_sec"`

	// Attempted counts every submission the generator issued; Submitted
	// the ones the service accepted. The rejection counters split the
	// refused remainder by typed cause.
	Attempted     int `json:"attempted"`
	Submitted     int `json:"submitted"`
	RejectedQuota int `json:"rejected_quota"`
	RejectedRate  int `json:"rejected_rate"`
	RejectedQueue int `json:"rejected_queue"`
	OtherErrors   int `json:"other_errors"`

	// Terminal outcomes of the accepted jobs, as observed through each
	// job's event stream; Shed counts the canceled jobs whose cause was
	// the service's load shedder.
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	Shed     int `json:"shed"`

	// LostTerminal counts accepted jobs whose event stream ended without a
	// terminal event — the invariant the smoke step pins to zero.
	LostTerminal int `json:"lost_terminal"`

	// Outcomes maps "done"/"failed"/"canceled" to client-observed latency.
	Outcomes map[string]LoadLatency `json:"outcomes"`
}

// LoadLoadReport reads one loadgen report.
func LoadLoadReport(path string) (*LoadReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r LoadReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// CheckLoadSLO returns every violated service-level objective of a load
// run: no accepted job may lose its terminal event, at least one job must
// complete (a run that completed nothing proves nothing), and the done-
// outcome p99 latency must stay within p99BoundMs.
func CheckLoadSLO(r *LoadReport, p99BoundMs float64) []string {
	var bad []string
	if r.LostTerminal > 0 {
		bad = append(bad, fmt.Sprintf("%d accepted jobs lost their terminal event", r.LostTerminal))
	}
	if r.Done == 0 {
		bad = append(bad, "no job completed — the run proves nothing")
	}
	if done, ok := r.Outcomes["done"]; ok && p99BoundMs > 0 && done.P99Ms > p99BoundMs {
		bad = append(bad, fmt.Sprintf("done p99 latency %.1fms exceeds the %.0fms SLO", done.P99Ms, p99BoundMs))
	}
	if r.Submitted != r.Done+r.Failed+r.Canceled+r.LostTerminal {
		bad = append(bad, fmt.Sprintf("accounting hole: %d submitted != %d done + %d failed + %d canceled + %d lost",
			r.Submitted, r.Done, r.Failed, r.Canceled, r.LostTerminal))
	}
	return bad
}
