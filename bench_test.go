// Benchmark harness regenerating every table and figure of the paper's
// evaluation section, plus the ablations indexed in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark logs the regenerated rows/series once (visible
// with -v or on failures) and reports headline values as custom metrics, so
// `go test -bench` output doubles as the reproduction record.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ccube"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/jacobi"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/ordering"
	"repro/internal/sequence"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// E1 — Table 1: α of the permuted-BR sequences vs the lower bound.

func BenchmarkTable1AlphaPermutedBR(b *testing.B) {
	var rows []core.SequenceReport
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = core.Table1(7, 14)
		if err != nil {
			b.Fatal(err)
		}
	}
	text := "Table 1 (α, lower bound, ratio):\n"
	worst := 0.0
	for _, r := range rows {
		text += fmt.Sprintf("  e=%2d  α=%4d  lb=%4d  ratio=%.2f\n", r.E, r.Alpha, r.LowerBound, r.Ratio)
		if r.Ratio > worst {
			worst = r.Ratio
		}
	}
	b.Log(text)
	b.ReportMetric(worst, "worst-α/lb-ratio")
}

// ---------------------------------------------------------------------------
// E2 — Table 2: convergence of the orderings (reduced trial count per
// benchmark iteration; `jacobitool table2` runs the full 30).

func BenchmarkTable2Convergence(b *testing.B) {
	var cells []core.Table2Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = core.Table2(core.Table2Config{
			Sizes:  []int{8, 16, 32, 64},
			Trials: 3,
			Seed:   1998,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	text := "Table 2 (average sweeps; BR / permuted-BR / degree-4):\n"
	maxSweeps := 0.0
	for _, c := range cells {
		text += fmt.Sprintf("  m=%2d P=%2d  %.2f / %.2f / %.2f\n",
			c.M, c.P, c.Sweeps["BR"], c.Sweeps["permuted-BR"], c.Sweeps["degree-4"])
		if s := c.Sweeps["BR"]; s > maxSweeps {
			maxSweeps = s
		}
	}
	b.Log(text)
	b.ReportMetric(maxSweeps, "max-avg-sweeps")
}

// ---------------------------------------------------------------------------
// E3/E4/E5 — Figure 2 panels (a) m=2^18, (b) m=2^23, (c) m=2^32.

func benchmarkFigure2(b *testing.B, logM int) {
	var pts []core.Figure2Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = core.Figure2(logM, 15)
		if err != nil {
			b.Fatal(err)
		}
	}
	text := fmt.Sprintf("Figure 2, m=2^%d (d: pipelined-BR / permuted-BR / degree-4 / lower bound):\n", logM)
	for _, p := range pts {
		text += fmt.Sprintf("  d=%2d  %.3f / %.3f / %.3f / %.3f\n",
			p.D, p.PipelinedBR, p.PermutedBR, p.Degree4, p.LowerBound)
	}
	b.Log(text)
	last := pts[len(pts)-1]
	b.ReportMetric(last.PipelinedBR, "pipelinedBR@d15")
	b.ReportMetric(last.PermutedBR, "permutedBR@d15")
	b.ReportMetric(last.Degree4, "degree4@d15")
}

func BenchmarkFigure2a(b *testing.B) { benchmarkFigure2(b, 18) }
func BenchmarkFigure2b(b *testing.B) { benchmarkFigure2(b, 23) }
func BenchmarkFigure2c(b *testing.B) { benchmarkFigure2(b, 32) }

// ---------------------------------------------------------------------------
// E6 — ablation: emulated machine vs analytic model on identical workloads.

func BenchmarkSimulatedVsAnalytic(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := matrix.RandomSymmetric(32, rng)
	var rel float64
	for i := 0; i < b.N; i++ {
		cfg := jacobi.ParallelConfig{Family: ordering.NewBRFamily(), Ts: 1000, Tw: 100, FixedSweeps: 1}
		_, stats, err := jacobi.SolveParallel(a, 2, cfg)
		if err != nil {
			b.Fatal(err)
		}
		analytic := costmodel.BaselineSweepCost(2, costmodel.Params{M: 32, Ts: 1000, Tw: 100})
		rel = (stats.Makespan - analytic) / analytic
	}
	b.ReportMetric(rel*100, "rel-diff-%")
}

// ---------------------------------------------------------------------------
// E7 — ablation: α across all orderings.

func BenchmarkAlphaAllOrderings(b *testing.B) {
	var text string
	for i := 0; i < b.N; i++ {
		text = ""
		for e := 4; e <= 14; e++ {
			d4, err := sequence.Degree4(e)
			if err != nil {
				b.Fatal(err)
			}
			text += fmt.Sprintf("  e=%2d  lb=%4d  BR=%5d  pBR=%4d  D4=%4d\n",
				e, sequence.LowerBoundAlpha(e), sequence.BRAlpha(e),
				sequence.PermutedBRAlpha(e), d4.Alpha())
		}
	}
	b.Log("α per ordering:\n" + text)
}

// ---------------------------------------------------------------------------
// E8 — ablation: sequence degree (Definition 2) across orderings.

func BenchmarkDegreeTable(b *testing.B) {
	var text string
	for i := 0; i < b.N; i++ {
		text = ""
		for e := 4; e <= 12; e++ {
			d4, err := sequence.Degree4(e)
			if err != nil {
				b.Fatal(err)
			}
			text += fmt.Sprintf("  e=%2d  BR=%d  pBR=%d  D4=%d\n",
				e, sequence.BR(e).Degree(), sequence.PermutedBR(e).Degree(), d4.Degree())
		}
	}
	b.Log("degree per ordering:\n" + text)
}

// ---------------------------------------------------------------------------
// E9 — ablation: cost vs pipelining degree for one exchange phase.

func BenchmarkPipeliningDegreeSweep(b *testing.B) {
	seq := sequence.PermutedBR(8)
	params := ccube.CostParams{Ts: 1000, Tw: 100}
	var text string
	var bestQ int
	for i := 0; i < b.N; i++ {
		text = ""
		for _, q := range []int{1, 2, 4, 16, 64, 255, 1024, 65536} {
			text += fmt.Sprintf("  Q=%6d  cost=%.3e\n", q, ccube.PhaseCommCost(seq, q, 1e6, params))
		}
		bestQ = ccube.OptimalPhaseQ(seq, 1e6, 1<<20, params).Q
	}
	b.Log("permuted-BR e=8, S=1e6:\n" + text)
	b.ReportMetric(float64(bestQ), "optimal-Q")
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: the building blocks.

func BenchmarkSequenceBR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = sequence.BR(14)
	}
}

func BenchmarkSequencePermutedBR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = sequence.PermutedBR(14)
	}
}

func BenchmarkSequenceDegree4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sequence.Degree4(14); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequenceValidate(b *testing.B) {
	seq := sequence.PermutedBR(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sequence.IsESequence(seq, 14) {
			b.Fatal("invalid")
		}
	}
}

func BenchmarkAlphaSlidingStats(b *testing.B) {
	seq := sequence.PermutedBR(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sequence.SlidingStats(seq, 64)
	}
}

func BenchmarkSweepBuild(b *testing.B) {
	fam := ordering.NewPermutedBRFamily()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ordering.BuildSweep(10, fam); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepVerify(b *testing.B) {
	fam := ordering.NewDegree4Family()
	sw, err := ordering.BuildSweep(6, fam)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := ordering.NewState(6)
		if err := ordering.VerifySweep(st, sw, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRotationKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := 256
	x := make([]float64, m)
	y := make([]float64, m)
	ux := make([]float64, m)
	uy := make([]float64, m)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	var conv jacobi.ConvTracker
	b.SetBytes(int64(4 * m * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jacobi.RotatePair(x, y, ux, uy, &conv)
	}
}

func BenchmarkPipelineScheduleBuild(b *testing.B) {
	seq := sequence.PermutedBR(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ccube.Build(seq, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMachineExchange(b *testing.B) {
	m, err := machine.New(machine.Config{Dim: 3, Ts: 1000, Tw: 100})
	if err != nil {
		b.Fatal(err)
	}
	payloadLen := 1024
	b.SetBytes(int64(8 * payloadLen * m.Nodes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := m.Run(func(ctx *machine.NodeCtx) error {
			_, err := ctx.Exchange(0, make([]float64, payloadLen))
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMachineAllReduce(b *testing.B) {
	m, err := machine.New(machine.Config{Dim: 4, Ts: 1000, Tw: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := m.Run(func(ctx *machine.NodeCtx) error {
			_, err := ctx.AllReduceSum([]float64{1, 2, 3})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSequentialSchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := matrix.RandomSymmetric(32, rng)
	fam := ordering.NewDegree4Family()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jacobi.SolveSchedule(a, 2, fam, jacobi.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := matrix.RandomSymmetric(32, rng)
	cfg := jacobi.ParallelConfig{Family: ordering.NewDegree4Family(), Ts: 1000, Tw: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := jacobi.SolveParallel(a, 2, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveParallelPipelined(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := matrix.RandomSymmetric(32, rng)
	cfg := jacobi.ParallelConfig{Family: ordering.NewDegree4Family(), Ts: 1000, Tw: 100, PipelineQ: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := jacobi.SolveParallelPipelined(a, 2, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoSidedReference(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := matrix.RandomSymmetric(32, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jacobi.SolveTwoSided(a, jacobi.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E12 — engine backends: the same n=512 eigensolve on the emulated machine
// (serialized payloads + virtual clock) and on the shared-memory multicore
// backend (pointer handoff, no clock). Multicore must win wall-clock: the
// work is identical, the serialization is not.

func benchmarkBackend512(b *testing.B, be engine.ExecBackend) {
	rng := rand.New(rand.NewSource(512))
	a := matrix.RandomSymmetric(512, rng)
	cfg := jacobi.ParallelConfig{Family: ordering.NewPermutedBRFamily(), Ts: 1000, Tw: 100, FixedSweeps: 1, Backend: be}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := jacobi.SolveParallel(a, 3, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackendEmulated512(b *testing.B)  { benchmarkBackend512(b, nil) }
func BenchmarkBackendMulticore512(b *testing.B) { benchmarkBackend512(b, &engine.Multicore{}) }
func BenchmarkBackendAnalytic512(b *testing.B) {
	benchmarkBackend512(b, &engine.Analytic{Ts: 1000, Tw: 100})
}

// ---------------------------------------------------------------------------
// E13 — the sweep-schedule cache: repeated schedule construction must cost
// zero allocations after the first build (compare BenchmarkSweepBuild).

func BenchmarkSweepCached(b *testing.B) {
	fam := ordering.NewPermutedBRFamily()
	if _, err := ordering.CachedSweep(10, fam); err != nil {
		b.Fatal(err)
	}
	before := ordering.SweepCacheStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ordering.CachedSweep(10, fam); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := ordering.SweepCacheStats()
	if builds := after.Builds - before.Builds; builds != 0 {
		b.Fatalf("cached sweep performed %d rebuilds", builds)
	}
	b.ReportMetric(float64(after.Hits-before.Hits)/float64(b.N), "hits/op")
}

// ---------------------------------------------------------------------------
// E10 — ablation: relative cost vs port count (k-port architectures).

func BenchmarkPortCountSweep(b *testing.B) {
	p := costmodel.Params{M: 1 << 23, Ts: 1000, Tw: 100}
	var pts []costmodel.PortPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = costmodel.PortCountSweep(8, []int{1, 2, 4, 8, 0}, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	text := "cost vs ports (d=8, m=2^23):\n"
	for _, pt := range pts {
		text += fmt.Sprintf("  k=%d  pipeBR=%.3f  pBR=%.3f  d4=%.3f\n",
			pt.K, pt.PipelinedBR, pt.PermutedBR, pt.Degree4)
	}
	b.Log(text)
	b.ReportMetric(pts[2].Degree4, "degree4@4ports")
}

// ---------------------------------------------------------------------------
// E11 — ablation: link balance, static (schedule) and dynamic (traced run).

func BenchmarkLinkBalance(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := matrix.RandomSymmetric(32, rng)
	var brShare, pbrShare float64
	for i := 0; i < b.N; i++ {
		for _, entry := range []struct {
			fam  ordering.Family
			dest *float64
		}{
			{ordering.NewBRFamily(), &brShare},
			{ordering.NewPermutedBRFamily(), &pbrShare},
		} {
			col := trace.NewCollector()
			cfg := jacobi.ParallelConfig{Family: entry.fam, Ts: 1000, Tw: 100, FixedSweeps: 1, Trace: col.Record}
			if _, _, err := jacobi.SolveParallel(a, 4, cfg); err != nil {
				b.Fatal(err)
			}
			*entry.dest = col.Summarize(4).MaxDimShare
		}
	}
	b.Logf("busiest-dimension message share: BR %.2f vs permuted-BR %.2f (1/d = 0.25)", brShare, pbrShare)
	b.ReportMetric(brShare, "BR-max-share")
	b.ReportMetric(pbrShare, "pBR-max-share")
}

// ---------------------------------------------------------------------------
// SVD micro-benchmark (the method's other face; reference [7] of the paper).

func BenchmarkSolveSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	a := matrix.RandomDense(32, 16, rng)
	fam := ordering.NewDegree4Family()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jacobi.SolveSVD(a, 2, fam, jacobi.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
