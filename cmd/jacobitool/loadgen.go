package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/client"
	"repro/internal/bench"
)

// cmdLoadgen is the synthetic load driver of the traffic-hardening layer:
// an open-loop Poisson arrival process (submissions are NOT gated on
// completions, so queue pressure builds exactly as it would under real
// overload) over a mixed job-shape profile — lane-sized small solves,
// multicore-sized big ones, and cache-hit repeats of one fixed problem —
// fanned across tenants and priorities, with every accepted job watched
// through its event stream by a fast or deliberately slow subscriber. The
// run ends in a bench.LoadReport (JSON): per-outcome client-observed
// latency percentiles, typed rejection counts, and the lost-terminal-event
// counter the CI smoke step pins to zero. The SLO gate
// (internal/bench.TestLoadSLOGate) consumes the same report.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	remote := fs.String("remote", "", "server base URL; empty = drive an in-process service")
	jobs := fs.Int("jobs", 500, "submissions to issue")
	rate := fs.Float64("rate", 200, "offered arrival rate, jobs/sec (open-loop Poisson)")
	seed := fs.Int64("seed", 1, "deterministic arrival/shape seed")
	out := fs.String("out", "", "write the JSON report here (empty = stdout)")
	smallN := fs.Int("small-n", 24, "matrix size of the small (lane-sized) profile")
	bigN := fs.Int("big-n", 96, "matrix size of the big (multicore) profile")
	dim := fs.Int("d", 2, "hypercube dimension of every job")
	pBig := fs.Float64("p-big", 0.15, "probability of a big job")
	pRepeat := fs.Float64("p-repeat", 0.20, "probability of a cache-hit repeat (one fixed problem)")
	slowFrac := fs.Float64("slow-frac", 0.10, "fraction of subscribers that read their event stream slowly")
	tenants := fs.Int("tenants", 4, "tenants to spread submissions across")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-job terminal-event deadline after submission ends")
	// In-process service shape (ignored with -remote).
	workers := fs.Int("workers", 0, "local solve-pool size (0 = default)")
	laneW := fs.Int("lane-width", 4, "local batched-lane width (0 disables)")
	queueCap := fs.Int("queue", 0, "local queue capacity (0 = default)")
	quota := fs.Int("tenant-quota", 0, "local per-tenant queued-job quota (0 disables)")
	tenantRate := fs.Float64("tenant-rate", 0, "local per-tenant submit rate limit, jobs/sec (0 disables)")
	shedHW := fs.Int("shed-high-water", 0, "local shed high-water mark (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs <= 0 || *rate <= 0 {
		return fmt.Errorf("need -jobs > 0 and -rate > 0")
	}
	c, err := newClient(*remote, client.LocalConfig{
		Workers:          *workers,
		QueueCap:         *queueCap,
		LaneWidth:        *laneW,
		TenantQueueQuota: *quota,
		TenantRate:       *tenantRate,
		ShedHighWater:    *shedHW,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	target := *remote
	if target == "" {
		target = "local"
	}
	rng := rand.New(rand.NewSource(*seed))
	rep := &bench.LoadReport{
		Date:        time.Now().UTC().Format(time.RFC3339),
		Target:      target,
		OfferedRate: *rate,
		Attempted:   *jobs,
	}
	var (
		mu        sync.Mutex
		latencies = map[string][]float64{}
		wg        sync.WaitGroup
	)
	start := time.Now()
	for i := 0; i < *jobs; i++ {
		// Open-loop Poisson arrivals: exponential inter-arrival gaps at the
		// offered rate, never waiting on any previous job's fate.
		time.Sleep(time.Duration(rng.ExpFloat64() / *rate * float64(time.Second)))
		spec := shapeSpec(rng, i, *smallN, *bigN, *dim, *pBig, *pRepeat, *tenants)
		slow := rng.Float64() < *slowFrac
		wg.Add(1)
		go func() {
			defer wg.Done()
			submitted := time.Now()
			h, err := c.Submit(context.Background(), spec)
			if err != nil {
				mu.Lock()
				defer mu.Unlock()
				var ce *client.Error
				switch {
				case errors.As(err, &ce) && ce.Code == client.CodeQuotaExceeded:
					rep.RejectedQuota++
				case errors.As(err, &ce) && ce.Code == client.CodeRateLimited:
					rep.RejectedRate++
				case errors.As(err, &ce) && ce.Code == client.CodeQueueFull:
					rep.RejectedQueue++
				default:
					rep.OtherErrors++
				}
				return
			}
			terminal, shed := watchTerminal(h, slow, *timeout)
			ms := float64(time.Since(submitted).Microseconds()) / 1000
			mu.Lock()
			defer mu.Unlock()
			rep.Submitted++
			switch terminal {
			case client.EventDone:
				rep.Done++
				latencies["done"] = append(latencies["done"], ms)
			case client.EventFailed:
				rep.Failed++
				latencies["failed"] = append(latencies["failed"], ms)
			case client.EventCanceled:
				rep.Canceled++
				latencies["canceled"] = append(latencies["canceled"], ms)
				if shed {
					rep.Shed++
				}
			default:
				rep.LostTerminal++
			}
		}()
	}
	wg.Wait()
	rep.DurationSec = time.Since(start).Seconds()
	rep.Outcomes = make(map[string]bench.LoadLatency, len(latencies))
	for outcome, ms := range latencies {
		sort.Float64s(ms)
		rep.Outcomes[outcome] = bench.LoadLatency{
			Count: len(ms),
			P50Ms: quantile(ms, 0.50),
			P99Ms: quantile(ms, 0.99),
			MaxMs: ms[len(ms)-1],
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(data)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d attempted, %d accepted (%d/%d/%d quota/rate/queue rejected), %d done, %d failed, %d canceled (%d shed), %d lost in %.1fs\n",
		rep.Attempted, rep.Submitted, rep.RejectedQuota, rep.RejectedRate, rep.RejectedQueue,
		rep.Done, rep.Failed, rep.Canceled, rep.Shed, rep.LostTerminal, rep.DurationSec)
	if rep.LostTerminal > 0 {
		return fmt.Errorf("%d accepted jobs lost their terminal event", rep.LostTerminal)
	}
	return nil
}

// shapeSpec draws one job from the mixed profile: a cache-hit repeat of one
// fixed problem, a big multicore-sized solve, or a lane-sized small solve
// with a unique seed, spread across tenants and priorities.
func shapeSpec(rng *rand.Rand, i, smallN, bigN, dim int, pBig, pRepeat float64, tenants int) client.Spec {
	spec := client.Spec{
		Dim:    dim,
		Tenant: fmt.Sprintf("tenant-%d", rng.Intn(max(tenants, 1))),
		// Mostly normal traffic with low-priority bulk and a few
		// interactive-priority jobs, so the shed policy has a gradient to
		// work with.
		Priority: [...]int{-1, 0, 0, 0, 0, 0, 0, 0, 1, 1}[rng.Intn(10)],
	}
	switch draw := rng.Float64(); {
	case draw < pRepeat:
		spec.Label = "repeat"
		spec.Random = &client.RandomSpec{N: smallN, Seed: 42}
	case draw < pRepeat+pBig:
		spec.Label = "big"
		spec.Random = &client.RandomSpec{N: bigN, Seed: int64(i) + 1000}
	default:
		spec.Label = "small"
		spec.Random = &client.RandomSpec{N: smallN, Seed: int64(i) + 1}
	}
	return spec
}

// watchTerminal follows one accepted job's event stream to its terminal
// event ("" when the stream ended or timed out without one). A slow
// subscriber dawdles on every event, exercising the drop-oldest policy;
// the terminal event must arrive regardless. shed reports a cancellation
// whose cause was the service's load shedder.
//
// A stream that ends (or refuses to open) without a terminal event is
// retried until the per-job deadline: when a cluster node is killed
// mid-run, its jobs reappear on the adopting survivor only after the
// failure-detection window, and a watcher that gave up in that gap would
// report a terminal event as lost when it was merely delayed. Each retry
// replays the job's history, so the terminal event cannot be missed once
// it exists.
func watchTerminal(h client.JobHandle, slow bool, timeout time.Duration) (terminal client.EventType, shed bool) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for {
		events, err := h.Events(ctx)
		if err == nil {
			for ev := range events {
				if slow {
					time.Sleep(2 * time.Millisecond)
				}
				if ev.Type.Terminal() {
					return ev.Type, strings.Contains(ev.Error, "shed under load")
				}
			}
		}
		select {
		case <-ctx.Done():
			return "", false
		case <-time.After(500 * time.Millisecond):
		}
	}
}

// quantile returns the q-quantile of an ascending sample set.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}
