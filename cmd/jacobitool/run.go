package main

import (
	"flag"
	"fmt"
	"math/rand"

	"repro/internal/ccube"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/jacobi"
	"repro/internal/matrix"
	"repro/internal/ordering"
)

// cmdSequences prints the D_e sequences of every ordering with analysis.
func cmdSequences(args []string) error {
	fs := flag.NewFlagSet("sequences", flag.ContinueOnError)
	e := fs.Int("e", 5, "exchange-phase dimension")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, o := range core.Orderings() {
		rep, err := core.AnalyzeSequence(o, *e)
		if err != nil {
			return err
		}
		seq, err := o.LinkSequence(*e)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s e=%d  α=%-4d (lb %d, ratio %.2f)  degree=%d  valid=%v\n",
			o, rep.E, rep.Alpha, rep.LowerBound, rep.Ratio, rep.Degree, rep.Valid)
		if len(seq) <= 127 {
			fmt.Printf("          %s\n", seq.String())
		} else {
			fmt.Printf("          (%d links)\n", len(seq))
		}
	}
	return nil
}

// cmdVerify machine-checks the round-robin property of every ordering.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	d := fs.Int("d", 4, "hypercube dimension")
	sweeps := fs.Int("sweeps", 5, "consecutive sweeps to verify")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, o := range core.Orderings() {
		if err := core.VerifyOrdering(o, *d, *sweeps); err != nil {
			return fmt.Errorf("%s: %w", o, err)
		}
		fmt.Printf("%-9s d=%d: %d sweeps verified — every block pair exactly once per sweep, CC-cube property holds\n",
			o, *d, *sweeps)
	}
	return nil
}

// cmdPipeline prints the stage schedule of a pipelined exchange phase.
func cmdPipeline(args []string) error {
	fs := flag.NewFlagSet("pipeline", flag.ContinueOnError)
	e := fs.Int("e", 3, "exchange-phase dimension")
	q := fs.Int("q", 3, "pipelining degree")
	ord := fs.String("o", "br", "ordering (br, pbr, d4, minalpha)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	seq, err := core.Ordering(*ord).LinkSequence(*e)
	if err != nil {
		return err
	}
	sched, err := ccube.Build(seq, *q)
	if err != nil {
		return err
	}
	mode := "shallow"
	if sched.Deep() {
		mode = "deep"
	}
	fmt.Printf("pipelined CC-cube schedule: %s phase e=%d (K=%d iterations), Q=%d (%s mode)\n",
		*ord, *e, sched.K, sched.Q, mode)
	fmt.Printf("link sequence: %s\n", seq.String())
	fmt.Printf("%d stages: prologue %d, kernel %d, epilogue %d\n",
		len(sched.Stages), sched.PrologueLen(), sched.KernelLen(), sched.PrologueLen())
	for _, st := range sched.Stages {
		fmt.Printf("  stage %2d: compute", st.Index)
		for _, p := range st.Packets {
			fmt.Printf(" (it %d, pkt %d)", p.K, p.Q)
		}
		fmt.Printf("  | send")
		for _, send := range st.Sends {
			fmt.Printf(" link%d×%d", send.Link, len(send.Packets))
		}
		fmt.Println()
	}
	return nil
}

// cmdSolve runs a distributed eigensolve on the selected execution backend.
func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	m := fs.Int("m", 32, "matrix size")
	d := fs.Int("d", 2, "hypercube dimension")
	ord := fs.String("o", "pbr", "ordering (br, pbr, d4, minalpha)")
	backend := fs.String("backend", "emulated", "execution backend (emulated, multicore, analytic)")
	pipelined := fs.Bool("pipelined", false, "apply communication pipelining")
	onePort := fs.Bool("oneport", false, "one-port machine configuration")
	seed := fs.Int64("seed", 42, "random matrix seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	a := matrix.RandomSymmetric(*m, rng)
	res, err := core.Solve(a, core.SolveOptions{
		Dim:       *d,
		Ordering:  core.Ordering(*ord),
		Backend:   core.Backend(*backend),
		Pipelined: *pipelined,
		OnePort:   *onePort,
	})
	if err != nil {
		return err
	}
	fmt.Printf("solved %dx%d random symmetric matrix on %d-node hypercube (%s ordering, %s backend, pipelined=%v)\n",
		*m, *m, 1<<uint(*d), *ord, *backend, *pipelined)
	fmt.Printf("  sweeps: %d (converged=%v), rotations: %d\n",
		res.Eigen.Sweeps, res.Eigen.Converged, res.Eigen.Rotations)
	fmt.Printf("  residual max_i ||A·vᵢ-λᵢvᵢ||/||A||_F: %.2e\n",
		matrix.EigenResidual(a, res.Eigen.Values, res.Eigen.Vectors))
	fmt.Printf("  modeled time: %.0f units; messages: %d; elements: %d; wall: %v\n",
		res.Machine.Makespan, res.Machine.Messages, res.Machine.Elements, res.Machine.WallTime)
	n := len(res.Eigen.Values)
	show := n
	if show > 8 {
		show = 8
	}
	fmt.Printf("  smallest eigenvalues: %.5v\n", res.Eigen.Values[:show])
	return nil
}

// simulateVsAnalytic runs a fixed-sweep unpipelined solve and returns the
// measured makespan alongside the analytic baseline cost.
func simulateVsAnalytic(m, d, sweeps int, ord core.Ordering) (measured, analytic float64, err error) {
	fam, err := ord.Family()
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(7))
	a := matrix.RandomSymmetric(m, rng)
	cfg := jacobi.ParallelConfig{
		Family:      fam,
		Ts:          1000,
		Tw:          100,
		FixedSweeps: sweeps,
	}
	_, stats, err := jacobi.SolveParallel(a, d, cfg)
	if err != nil {
		return 0, 0, err
	}
	base := costmodel.BaselineSweepCost(d, costmodel.Params{M: float64(m), Ts: 1000, Tw: 100})
	_ = ordering.PhaseLengths(d)
	return stats.Makespan, base * float64(sweeps), nil
}
