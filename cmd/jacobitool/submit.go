package main

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/client"
)

// newClient builds the one Client the CLI's consumer commands run on: the
// in-process pool when remote is empty, the HTTP v2 client against a
// `jacobitool serve` instance otherwise. Everything downstream of this
// call is transport-agnostic — the point of the client package. A
// comma-separated remote lists the endpoints of a serve cluster: the
// client fails over between them and keys every submission so retries
// cannot double-execute.
func newClient(remote string, cfg client.LocalConfig) (client.Client, error) {
	if remote == "" {
		return client.NewLocal(cfg)
	}
	return client.NewHTTPMulti(splitRemotes(remote))
}

// splitRemotes turns "-remote url1,url2" into the endpoint list.
func splitRemotes(remote string) []string {
	var urls []string
	for _, u := range strings.Split(remote, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// cmdSubmit submits one eigensolve through the client API — to a remote
// server with -remote, or to an in-process pool without it — optionally
// streaming the job's progress events and waiting for the result.
func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	remote := fs.String("remote", "", "server base URL (e.g. http://127.0.0.1:8473); empty = solve in-process")
	n := fs.Int("n", 64, "matrix size")
	seed := fs.Int64("seed", 1, "random-matrix seed")
	d := fs.Int("d", 2, "hypercube dimension")
	ord := fs.String("o", "", "ordering: br, pbr, d4, minalpha (empty = server default, eligible for tuned schedules)")
	backend := fs.String("backend", "", "execution backend: auto, emulated, multicore, analytic")
	pipelined := fs.Bool("pipelined", false, "apply communication pipelining")
	q := fs.Int("q", 0, "pipelining degree (0 = cost-model optimum)")
	tol := fs.Float64("tol", 0, "convergence tolerance (0 = default)")
	sweeps := fs.Int("sweeps", 0, "max sweeps (0 = default)")
	oneport := fs.Bool("oneport", false, "one-port machine configuration")
	label := fs.String("label", "", "job label")
	key := fs.String("key", "", "idempotency key (a reused key returns the existing job)")
	watch := fs.Bool("watch", false, "stream the job's progress events")
	wait := fs.Bool("wait", false, "wait for the result (implied without -remote and by -watch)")
	idOnly := fs.Bool("idonly", false, "print only the job ID (scripting)")
	workers := fs.Int("workers", 0, "in-process solve-pool size (local mode)")
	threshold := fs.Int("threshold", 0, "local backend auto-selection threshold (0 = 64, negative = never multicore)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := newClient(*remote, client.LocalConfig{Workers: *workers, MulticoreThreshold: *threshold})
	if err != nil {
		return err
	}
	defer c.Close()

	spec := client.Spec{
		Label:          *label,
		Random:         &client.RandomSpec{N: *n, Seed: *seed},
		Dim:            *d,
		Ordering:       *ord,
		Backend:        *backend,
		Pipelined:      *pipelined,
		PipelineQ:      *q,
		Tol:            *tol,
		MaxSweeps:      *sweeps,
		OnePort:        *oneport,
		IdempotencyKey: *key,
	}
	ctx := context.Background()
	h, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	if *idOnly {
		fmt.Println(h.ID())
	} else {
		st, err := h.Status(ctx)
		if err != nil {
			return err
		}
		reused := ""
		if st.Reused {
			reused = " (reused via idempotency key)"
		}
		fmt.Printf("submitted %s: n=%d d=%d ordering=%s backend=%s%s\n", st.ID, st.N, st.Dim, st.Ordering, st.Backend, reused)
	}
	// A local pool dies with the process, so a local submit always sees
	// the solve through; remote submissions return immediately unless
	// asked to follow.
	follow := *wait || *watch || *remote == ""
	if !follow {
		return nil
	}
	if *watch && !*idOnly {
		events, err := h.Events(ctx)
		if err != nil {
			return err
		}
		if _, err := streamEventLines(events); err != nil {
			return err
		}
	}
	res, err := h.Wait(ctx)
	if err != nil {
		return err
	}
	// -idonly keeps stdout to the one ID line (scripting contract), even
	// when the local pool forces a wait for the solve.
	if !*idOnly {
		printResult(h.ID(), res)
	}
	return nil
}

// cmdWatch streams an existing job's progress events from a remote server
// until its terminal event, failing when the stream ends without one.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	remote := fs.String("remote", "", "server base URL, or a comma-separated cluster endpoint list (required)")
	timeout := fs.Duration("timeout", 10*time.Minute, "give up after this long")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: jacobitool watch -remote URL <job-id>")
	}
	c, err := client.NewHTTPMulti(splitRemotes(*remote))
	if err != nil {
		return err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	return watchJob(ctx, c, fs.Arg(0))
}

// watchJob attaches to one remote job's event stream.
func watchJob(ctx context.Context, c *client.HTTP, id string) error {
	h := c.Handle(id)
	events, err := h.Events(ctx)
	if err != nil {
		return err
	}
	terminal, err := streamEventLines(events)
	if err != nil {
		return err
	}
	if terminal == nil {
		return fmt.Errorf("event stream for %s ended without a terminal event", id)
	}
	if terminal.Type != client.EventDone {
		// The terminal event was printed; the exit code must still tell a
		// script the job did not finish cleanly.
		return fmt.Errorf("job %s ended %s: %s", id, terminal.Type, terminalCause(terminal))
	}
	res, err := h.Result(ctx)
	if err != nil {
		return err
	}
	printResult(id, res)
	return nil
}

// terminalCause names a terminal event's cause for error messages.
func terminalCause(ev *client.Event) string {
	if ev.Error != "" {
		return ev.Error
	}
	return string(ev.Type)
}

// streamEventLines prints each event as one line and returns the terminal
// event, if the stream delivered one.
func streamEventLines(events <-chan client.Event) (*client.Event, error) {
	var terminal *client.Event
	for ev := range events {
		switch ev.Type {
		case client.EventSweep:
			fmt.Printf("%-8s #%-3d sweep=%d max_rel=%.3e off_norm=%.3e rotations=%d\n",
				ev.Type, ev.Seq, ev.Sweep.Sweep, ev.Sweep.MaxRel, ev.Sweep.OffNorm, ev.Sweep.Rotations)
		default:
			line := fmt.Sprintf("%-8s #%-3d state=%s", ev.Type, ev.Seq, ev.State)
			if ev.CacheHit {
				line += " cache=hit"
			}
			if ev.Error != "" {
				line += " error=" + ev.Error
			}
			fmt.Println(line)
		}
		if ev.Dropped > 0 {
			fmt.Printf("         (%d event(s) dropped before #%d — slow consumer)\n", ev.Dropped, ev.Seq)
		}
		if ev.Type.Terminal() {
			ev := ev
			terminal = &ev
		}
	}
	return terminal, nil
}

// printResult summarizes a finished job.
func printResult(id string, res *client.Result) {
	fmt.Printf("%s: %d eigenvalues, %d sweeps, converged=%v, backend=%s, makespan=%.0f, wall=%.1fms\n",
		id, len(res.Values), res.Sweeps, res.Converged, res.Backend, res.Makespan, res.WallMs)
}
