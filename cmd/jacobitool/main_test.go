package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSelf compiles the jacobitool binary into a temp dir and returns its
// path. Exit-code semantics are part of the CLI contract (scripts and the
// conformance suites branch on them), so they are pinned against the real
// binary rather than unit-tested through main.
func buildSelf(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "jacobitool")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !strings.Contains(err.Error(), "exit status") {
		t.Fatalf("running binary: %v", err)
	}
	ee = err.(*exec.ExitError)
	return ee.ExitCode()
}

func TestExitCodes(t *testing.T) {
	bin := buildSelf(t)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args is a usage error", nil, 2},
		{"unknown command is a usage error", []string{"frobnicate"}, 2},
		{"bad flag is a usage error surfaced as runtime", []string{"verify", "-nosuchflag"}, 1},
		{"runtime error", []string{"watch"}, 1}, // missing -remote and job id
		{"help succeeds", []string{"help"}, 0},
		{"verify succeeds", []string{"verify", "-d", "2", "-sweeps", "1"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command(bin, c.args...).CombinedOutput()
			if got := exitCode(t, err); got != c.want {
				t.Errorf("jacobitool %v: exit %d, want %d\noutput:\n%s", c.args, got, c.want, out)
			}
		})
	}
}
