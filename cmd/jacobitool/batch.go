package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/client"
	"repro/internal/jacobi"
	"repro/internal/matrix"
	"repro/internal/ordering"
)

// cmdBatch solves a manifest of problems concurrently through the client
// API and prints a per-job summary table. The manifest is a JSON array of
// job specs (the client package's Spec wire shape); without -manifest a
// built-in 16-problem demo manifest runs. With -remote the batch goes to a
// `jacobitool serve` instance in one POST /api/v2/batch request; without
// it an in-process pool solves it. With -check every (non-fixed-sweep)
// job's eigenvalues are verified against a sequential single-solve run of
// the same problem.
func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	manifest := fs.String("manifest", "", "path to a JSON manifest (array of job specs); default: built-in 16-problem demo")
	remote := fs.String("remote", "", "server base URL; empty = solve in-process")
	workers := fs.Int("workers", 4, "in-process solve concurrency (local mode)")
	threshold := fs.Int("threshold", 0, "local backend auto-selection threshold (0 = 64, negative = never multicore)")
	check := fs.Bool("check", false, "verify each job against a sequential single-solve run")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall batch deadline")
	laneW := fs.Int("lane-width", 0, "batched-lane width for in-process small jobs (0 disables; >= 2 enables SIMD-lockstep lanes)")
	laneWin := fs.Duration("lane-window", 0, "how long a lane leader waits for same-shape lane mates (0 = service default)")
	cacheMax := fs.Int64("cache-max", 0, "result-cache byte budget for the in-process pool (0 = entries-only bound)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var specs []client.Spec
	if *manifest == "" {
		specs = demoManifest()
		fmt.Printf("batch: built-in demo manifest (%d problems)\n", len(specs))
	} else {
		data, err := os.ReadFile(*manifest)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &specs); err != nil {
			return fmt.Errorf("parse %s: %w", *manifest, err)
		}
		fmt.Printf("batch: %s (%d problems)\n", *manifest, len(specs))
	}

	c, err := newClient(*remote, client.LocalConfig{
		Workers:            *workers,
		MulticoreThreshold: *threshold,
		LaneWidth:          *laneW,
		LaneWindow:         *laneWin,
		CacheMaxBytes:      *cacheMax,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	start := time.Now()
	handles, err := client.SubmitAll(ctx, c, specs)
	if err != nil {
		return err
	}

	fmt.Printf("%-12s %5s %3s %-9s %-10s %-8s %6s %5s %12s %9s %5s\n",
		"job", "n", "d", "ordering", "backend", "state", "sweeps", "conv", "makespan", "wall ms", "cache")
	failed := 0
	statuses := make([]*client.Status, len(handles))
	results := make([]*client.Result, len(handles))
	for i, h := range handles {
		res, werr := h.Wait(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		st, serr := h.Status(ctx)
		if serr != nil {
			return serr
		}
		statuses[i] = st
		label := st.Label
		if label == "" {
			label = st.ID
		}
		if werr != nil {
			failed++
			fmt.Printf("%-12s %5d %3d %-9s %-10s %-8s %v\n", label, st.N, st.Dim, st.Ordering, st.Backend, st.State, werr)
			continue
		}
		results[i] = res
		cache := ""
		if st.CacheHit {
			cache = "hit"
		}
		fmt.Printf("%-12s %5d %3d %-9s %-10s %-8s %6d %5v %12.0f %9.1f %5s\n",
			label, st.N, st.Dim, st.Ordering, st.Backend, st.State,
			res.Sweeps, res.Converged, res.Makespan, res.WallMs, cache)
	}
	elapsed := time.Since(start)

	m, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\n%d jobs in %v (%.1f jobs/sec)\n",
		len(handles), elapsed.Round(time.Millisecond), float64(len(handles))/elapsed.Seconds())
	fmt.Printf("  wall p50 %.1f ms, p99 %.1f ms; cache hits %d; aggregate modeled makespan %.0f units\n",
		m.WallP50Ms, m.WallP99Ms, m.CacheHits, m.TotalModeledMakespan)
	fmt.Printf("  schedule cache: %d build(s), %d hit(s)\n", m.ScheduleBuilds, m.ScheduleHits)

	if failed > 0 {
		return fmt.Errorf("%d job(s) did not complete", failed)
	}
	if *check {
		return checkBatch(specs, statuses, results)
	}
	return nil
}

// materialize reconstructs a spec's input matrix on the client side — the
// same construction the server performs — so -check can verify results
// without the service retaining the O(n²) payload.
func materialize(spec client.Spec) (*matrix.Dense, error) {
	switch {
	case spec.Matrix != nil:
		n := spec.Matrix.N
		return &matrix.Dense{Rows: n, Cols: n, Data: append([]float64(nil), spec.Matrix.Data...)}, nil
	case spec.Random != nil:
		return matrix.RandomSymmetric(spec.Random.N, rand.New(rand.NewSource(spec.Random.Seed))), nil
	default:
		return nil, fmt.Errorf("spec has neither matrix nor random")
	}
}

// checkBatch re-runs every job sequentially (the engine's central replay —
// the single-solve reference) and verifies the eigenvalues. Jobs that ran
// on a reference-kernel backend (emulated, analytic) must match bitwise;
// jobs resolved to the multicore backend ran the fused kernels and must
// match within the kernel layer's solve-level ulp budget (DESIGN.md,
// "Kernel layer"). Two job kinds are skipped: fixed-sweep jobs (including
// cost-only queries — the sequential solver always runs to convergence)
// and pipelined jobs with a degree other than 1 (Q > 1 reorganizes the
// rotation order, so they match to convergence tolerance, not bitwise).
func checkBatch(specs []client.Spec, statuses []*client.Status, results []*client.Result) error {
	// fusedTol is the solve-level budget for fused-kernel results against
	// the reference replay (the conformance suite's bound).
	const fusedTol = 1e-8
	checked, fused, skipped := 0, 0, 0
	for i, spec := range specs {
		if spec.FixedSweeps > 0 || spec.CostOnly || (spec.Pipelined && spec.PipelineQ != 1) {
			skipped++
			continue
		}
		res := results[i]
		if res == nil {
			return fmt.Errorf("job %d has no result to check", i)
		}
		// The status carries the ordering the service resolved at
		// submission (defaults applied) — no client-side copy of the
		// defaulting rules.
		ordName := statuses[i].Ordering
		if ordName == "" {
			ordName = spec.Ordering
		}
		fam, err := ordering.FamilyByName(ordName)
		if err != nil {
			return err
		}
		a, err := materialize(spec)
		if err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
		seq, err := jacobi.SolveSchedule(a, spec.Dim, fam, jacobi.Options{Tol: spec.Tol, MaxSweeps: spec.MaxSweeps})
		if err != nil {
			return fmt.Errorf("job %d sequential reference: %w", i, err)
		}
		if len(seq.Values) != len(res.Values) {
			return fmt.Errorf("job %d: %d values vs sequential %d", i, len(res.Values), len(seq.Values))
		}
		if statuses[i].Backend == "multicore" {
			for k := range seq.Values {
				if rel := math.Abs(res.Values[k]-seq.Values[k]) / (1 + math.Abs(seq.Values[k])); rel > fusedTol {
					return fmt.Errorf("job %d eigenvalue %d: multicore %.17g drifts %g from sequential %.17g (budget %g)",
						i, k, res.Values[k], rel, seq.Values[k], fusedTol)
				}
			}
			fused++
			continue
		}
		for k := range seq.Values {
			if res.Values[k] != seq.Values[k] {
				return fmt.Errorf("job %d eigenvalue %d: batch %.17g != sequential %.17g",
					i, k, res.Values[k], seq.Values[k])
			}
		}
		checked++
	}
	fmt.Printf("  check: %d job(s) bit-identical to sequential single-solve runs, %d fused multicore job(s) within the ulp budget, %d skipped (fixed-sweep or deep-pipelined)\n",
		checked, fused, skipped)
	return nil
}

// demoManifest builds the default 16-problem batch: a spread of sizes,
// dimensions, orderings and job kinds (plain, pipelined, cost-only,
// traced, and one deliberate duplicate to exercise the result cache).
func demoManifest() []client.Spec {
	orderings := []string{"br", "pbr", "d4", "minalpha"}
	var specs []client.Spec
	for i := 0; i < 12; i++ {
		specs = append(specs, client.Spec{
			Label:    fmt.Sprintf("solve-%02d", i),
			Random:   &client.RandomSpec{N: 24 + 8*(i%4), Seed: int64(1000 + i)},
			Dim:      1 + i%2,
			Ordering: orderings[i%len(orderings)],
		})
	}
	specs = append(specs,
		client.Spec{Label: "dup-of-00", Random: &client.RandomSpec{N: 24, Seed: 1000}, Dim: 1, Ordering: "br"},
		client.Spec{Label: "cost-query", Random: &client.RandomSpec{N: 64, Seed: 2000}, Dim: 2, Ordering: "br", CostOnly: true},
		client.Spec{Label: "traced", Random: &client.RandomSpec{N: 32, Seed: 2001}, Dim: 2, Ordering: "pbr", Trace: true},
		client.Spec{Label: "pipelined", Random: &client.RandomSpec{N: 32, Seed: 2002}, Dim: 2, Ordering: "d4", Pipelined: true, PipelineQ: 1},
	)
	return specs
}
