package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/jacobi"
	"repro/internal/ordering"
	"repro/internal/service"
)

// cmdBatch solves a manifest of problems concurrently through the batch
// service and prints a per-job summary table. The manifest is a JSON array
// of service.JobRequest objects; without -manifest a built-in 16-problem
// demo manifest runs. With -check every (non-fixed-sweep) job's
// eigenvalues are verified bit-identical against a sequential single-solve
// run of the same problem.
func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	manifest := fs.String("manifest", "", "path to a JSON manifest (array of job requests); default: built-in 16-problem demo")
	workers := fs.Int("workers", 4, "solve concurrency")
	check := fs.Bool("check", false, "verify each job against a sequential single-solve run")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall batch deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reqs []service.JobRequest
	if *manifest == "" {
		reqs = demoManifest()
		fmt.Printf("batch: built-in demo manifest (%d problems)\n", len(reqs))
	} else {
		data, err := os.ReadFile(*manifest)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &reqs); err != nil {
			return fmt.Errorf("parse %s: %w", *manifest, err)
		}
		fmt.Printf("batch: %s (%d problems)\n", *manifest, len(reqs))
	}

	specs := make([]service.JobSpec, len(reqs))
	for i, r := range reqs {
		spec, err := r.Spec()
		if err != nil {
			return fmt.Errorf("manifest entry %d: %w", i, err)
		}
		specs[i] = spec
	}

	svc := service.New(service.Config{Workers: *workers})
	defer svc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	start := time.Now()
	jobs, err := svc.SubmitAll(ctx, specs)
	if err != nil {
		return err
	}
	if err := service.WaitAll(ctx, jobs); err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("%-12s %5s %3s %-9s %-10s %-8s %6s %5s %12s %9s %5s\n",
		"job", "n", "d", "ordering", "backend", "state", "sweeps", "conv", "makespan", "wall ms", "cache")
	failed := 0
	for _, j := range jobs {
		st := j.Status()
		label := st.Label
		if label == "" {
			label = st.ID
		}
		res, err := j.Result()
		if err != nil {
			failed++
			fmt.Printf("%-12s %5d %3d %-9s %-10s %-8s %v\n", label, st.N, st.Dim, st.Ordering, st.Backend, st.State, err)
			continue
		}
		cache := ""
		if st.CacheHit {
			cache = "hit"
		}
		fmt.Printf("%-12s %5d %3d %-9s %-10s %-8s %6d %5v %12.0f %9.1f %5s\n",
			label, st.N, st.Dim, st.Ordering, st.Backend, st.State,
			res.Sweeps, res.Converged, res.Makespan, res.WallMs, cache)
	}

	m := svc.Metrics()
	fmt.Printf("\n%d jobs in %v at concurrency %d (%.1f jobs/sec)\n",
		len(jobs), elapsed.Round(time.Millisecond), *workers, float64(len(jobs))/elapsed.Seconds())
	fmt.Printf("  wall p50 %.1f ms, p99 %.1f ms; cache hits %d; aggregate modeled makespan %.0f units\n",
		m.WallP50Ms, m.WallP99Ms, m.CacheHits, m.TotalModeledMakespan)
	sc := m.ScheduleCache
	fmt.Printf("  schedule cache: %d build(s), %d hit(s)\n", sc.Builds, sc.Hits)

	if failed > 0 {
		return fmt.Errorf("%d job(s) did not complete", failed)
	}
	if *check {
		return checkBatch(jobs, specs)
	}
	return nil
}

// checkBatch re-runs every job sequentially (the engine's central replay —
// the single-solve reference) and verifies the eigenvalues. Jobs that ran
// on a reference-kernel backend (emulated, analytic) must match bitwise;
// jobs resolved to the multicore backend ran the fused kernels and must
// match within the kernel layer's solve-level ulp budget (DESIGN.md,
// "Kernel layer"). The job's normalized spec supplies the solve options;
// the input matrix comes from the caller-held specs, since the service
// releases its copy when a job completes. Two job kinds are skipped:
// fixed-sweep jobs (including cost-only queries — the sequential solver
// always runs to convergence) and pipelined jobs with a degree other than
// 1 (Q > 1 reorganizes the rotation order, so they match to convergence
// tolerance, not bitwise).
func checkBatch(jobs []*service.Job, specs []service.JobSpec) error {
	// fusedTol is the solve-level budget for fused-kernel results against
	// the reference replay (the conformance suite's bound).
	const fusedTol = 1e-8
	checked, fused, skipped := 0, 0, 0
	for i, j := range jobs {
		spec := j.Spec()
		if spec.FixedSweeps > 0 || (spec.Pipelined && spec.PipelineQ != 1) {
			skipped++
			continue
		}
		res, err := j.Result()
		if err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
		fam, err := ordering.FamilyByName(spec.Ordering)
		if err != nil {
			return err
		}
		seq, err := jacobi.SolveSchedule(specs[i].Matrix, spec.Dim, fam, jacobi.Options{Tol: spec.Tol, MaxSweeps: spec.MaxSweeps})
		if err != nil {
			return fmt.Errorf("job %d sequential reference: %w", i, err)
		}
		if len(seq.Values) != len(res.Values) {
			return fmt.Errorf("job %d: %d values vs sequential %d", i, len(res.Values), len(seq.Values))
		}
		if j.Backend() == service.BackendMulticore {
			for k := range seq.Values {
				if rel := math.Abs(res.Values[k]-seq.Values[k]) / (1 + math.Abs(seq.Values[k])); rel > fusedTol {
					return fmt.Errorf("job %d eigenvalue %d: multicore %.17g drifts %g from sequential %.17g (budget %g)",
						i, k, res.Values[k], rel, seq.Values[k], fusedTol)
				}
			}
			fused++
			continue
		}
		for k := range seq.Values {
			if res.Values[k] != seq.Values[k] {
				return fmt.Errorf("job %d eigenvalue %d: batch %.17g != sequential %.17g",
					i, k, res.Values[k], seq.Values[k])
			}
		}
		checked++
	}
	fmt.Printf("  check: %d job(s) bit-identical to sequential single-solve runs, %d fused multicore job(s) within the ulp budget, %d skipped (fixed-sweep or deep-pipelined)\n",
		checked, fused, skipped)
	return nil
}

// demoManifest builds the default 16-problem batch: a spread of sizes,
// dimensions, orderings and job kinds (plain, pipelined, cost-only,
// traced, and one deliberate duplicate to exercise the result cache).
func demoManifest() []service.JobRequest {
	orderings := []string{"br", "pbr", "d4", "minalpha"}
	var reqs []service.JobRequest
	for i := 0; i < 12; i++ {
		reqs = append(reqs, service.JobRequest{
			Label:    fmt.Sprintf("solve-%02d", i),
			Random:   &service.RandomSpec{N: 24 + 8*(i%4), Seed: int64(1000 + i)},
			Dim:      1 + i%2,
			Ordering: orderings[i%len(orderings)],
		})
	}
	reqs = append(reqs,
		service.JobRequest{Label: "dup-of-00", Random: &service.RandomSpec{N: 24, Seed: 1000}, Dim: 1, Ordering: "br"},
		service.JobRequest{Label: "cost-query", Random: &service.RandomSpec{N: 64, Seed: 2000}, Dim: 2, Ordering: "br", CostOnly: true},
		service.JobRequest{Label: "traced", Random: &service.RandomSpec{N: 32, Seed: 2001}, Dim: 2, Ordering: "pbr", Trace: true},
		service.JobRequest{Label: "pipelined", Random: &service.RandomSpec{N: 32, Seed: 2002}, Dim: 2, Ordering: "d4", Pipelined: true, PipelineQ: 1},
	)
	return reqs
}
