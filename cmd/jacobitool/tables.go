package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/sequence"
)

// cmdTable1 prints the reproduction of the paper's Table 1.
func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	from := fs.Int("from", 7, "first exchange-phase dimension e")
	to := fs.Int("to", 14, "last exchange-phase dimension e")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := core.Table1(*from, *to)
	if err != nil {
		return err
	}
	paper := map[int]int{7: 23, 8: 43, 9: 67, 10: 131, 11: 289, 12: 577, 13: 776, 14: 1543}
	fmt.Println("Table 1: α of the permuted-BR ordering vs the lower bound ceil((2^e-1)/e)")
	fmt.Println("  e    α    lower-bound  α/lower-bound   paper-α")
	for _, r := range rows {
		paperStr := "-"
		if v, ok := paper[r.E]; ok {
			paperStr = fmt.Sprintf("%d", v)
		}
		fmt.Printf(" %2d  %5d  %6d       %.2f           %s\n", r.E, r.Alpha, r.LowerBound, r.Ratio, paperStr)
	}
	return nil
}

// cmdTable2 prints the reproduction of the paper's Table 2.
func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ContinueOnError)
	trials := fs.Int("trials", 30, "random matrices per (m, P) cell")
	tol := fs.Float64("tol", 0, "convergence threshold on off(AᵀA)/trace (0 = default 3.5e-4)")
	seed := fs.Int64("seed", 1998, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cells, err := core.Table2(core.Table2Config{Trials: *trials, Tol: *tol, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("Table 2: average sweeps to convergence (%d matrices/cell, entries U[-1,1])\n", *trials)
	fmt.Println("   m    P      BR   permuted-BR   degree-4")
	for _, c := range cells {
		fmt.Printf(" %3d  %3d   %5.2f     %5.2f        %5.2f\n",
			c.M, c.P, c.Sweeps["BR"], c.Sweeps["permuted-BR"], c.Sweeps["degree-4"])
	}
	return nil
}

// cmdFigure2 prints one panel of Figure 2 as a table plus an ASCII plot.
func cmdFigure2(args []string) error {
	fs := flag.NewFlagSet("figure2", flag.ContinueOnError)
	logM := fs.Int("m", 23, "log2 of the matrix size (paper: 18, 23, 32)")
	maxD := fs.Int("maxd", 15, "largest hypercube dimension")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pts, err := core.Figure2(*logM, *maxD)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 2 (m = 2^%d, Ts=1000, Tw=100): communication cost relative to the BR CC-cube\n", *logM)
	fmt.Println("  d   pipelined-BR   permuted-BR    degree-4    lower-bound")
	for _, p := range pts {
		deep := ""
		if p.PermutedBRDeep {
			deep = " (deep)"
		}
		fmt.Printf(" %2d     %.3f          %.3f%-7s   %.3f        %.3f\n",
			p.D, p.PipelinedBR, p.PermutedBR, deep, p.Degree4, p.LowerBound)
	}
	fmt.Println()
	plotFigure2(pts)
	return nil
}

// plotFigure2 renders the four curves as a rough ASCII chart, cost ratio on
// the y axis (0..1), dimension on x.
func plotFigure2(pts []core.Figure2Point) {
	const height = 20
	grid := make([][]byte, height+1)
	for i := range grid {
		grid[i] = make([]byte, len(pts)*4+2)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	put := func(col int, ratio float64, ch byte) {
		row := height - int(ratio*float64(height)+0.5)
		if row < 0 {
			row = 0
		}
		if row > height {
			row = height
		}
		grid[row][2+col*4] = ch
	}
	for i, p := range pts {
		put(i, p.PipelinedBR, 'B')
		put(i, p.Degree4, '4')
		put(i, p.PermutedBR, 'P')
		put(i, p.LowerBound, 'L')
	}
	fmt.Println("  1.0 ┤ (B pipelined-BR, P permuted-BR, 4 degree-4, L lower bound)")
	for i, row := range grid {
		label := "      "
		switch i {
		case 0:
			label = " 1.00 "
		case height / 2:
			label = " 0.50 "
		case height:
			label = " 0.00 "
		}
		fmt.Printf("%s│%s\n", label, string(row))
	}
	fmt.Print("      └")
	for range pts {
		fmt.Print("────")
	}
	fmt.Println()
	fmt.Print("       ")
	for _, p := range pts {
		fmt.Printf("%-4d", p.D)
	}
	fmt.Println(" (hypercube dimension)")
}

// cmdAlphaTable prints α for every ordering family across phases.
func cmdAlphaTable(args []string) error {
	fs := flag.NewFlagSet("alphatable", flag.ContinueOnError)
	max := fs.Int("max", 14, "largest phase dimension e")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("α (max repetitions of one link in D_e) per ordering; lower is better for deep pipelining")
	fmt.Println("  e   lower-bound     BR        permuted-BR   degree-4   min-α")
	for e := 2; e <= *max; e++ {
		lb := sequence.LowerBoundAlpha(e)
		br := sequence.BRAlpha(e)
		pbr := sequence.PermutedBRAlpha(e)
		d4 := "-"
		if s, err := sequence.Degree4(e); err == nil {
			d4 = fmt.Sprintf("%d", s.Alpha())
		}
		ma := "-"
		if v, err := sequence.MinAlphaValue(e); err == nil {
			ma = fmt.Sprintf("%d", v)
		}
		fmt.Printf(" %2d   %8d   %8d   %8d      %8s   %5s\n", e, lb, br, pbr, d4, ma)
	}
	return nil
}

// cmdDegrees prints the Definition-2 degree of every ordering's sequences.
func cmdDegrees(args []string) error {
	fs := flag.NewFlagSet("degrees", flag.ContinueOnError)
	max := fs.Int("max", 12, "largest phase dimension e")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("sequence degree (Definition 2); shallow pipelining gains ≈ degree")
	fmt.Println("  e    BR   permuted-BR   degree-4   min-α")
	for e := 2; e <= *max; e++ {
		row := fmt.Sprintf(" %2d   %3d", e, sequence.BR(e).Degree())
		row += fmt.Sprintf("   %6d", sequence.PermutedBR(e).Degree())
		if s, err := sequence.Degree4(e); err == nil {
			row += fmt.Sprintf("        %3d", s.Degree())
		} else {
			row += "          -"
		}
		if s, err := sequence.MinAlpha(e); err == nil {
			row += fmt.Sprintf("     %3d", s.Degree())
		} else {
			row += "       -"
		}
		fmt.Println(row)
	}
	return nil
}

// cmdSimulate compares the emulated machine's measured communication time
// against the analytic model for a fixed number of sweeps.
func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	m := fs.Int("m", 64, "matrix size")
	d := fs.Int("d", 2, "hypercube dimension")
	sweeps := fs.Int("sweeps", 2, "fixed sweep count")
	ord := fs.String("o", "br", "ordering (br, pbr, d4, minalpha)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	measured, analytic, err := simulateVsAnalytic(*m, *d, *sweeps, core.Ordering(*ord))
	if err != nil {
		return err
	}
	fmt.Printf("unpipelined %s sweep on %d nodes, m=%d, %d sweeps (Ts=1000, Tw=100):\n",
		*ord, 1<<uint(*d), *m, *sweeps)
	fmt.Printf("  emulated machine makespan: %.0f model units\n", measured)
	fmt.Printf("  analytic model:            %.0f model units\n", analytic)
	fmt.Printf("  relative difference:       %+.2f%% (encoding headers explain the gap)\n",
		100*(measured-analytic)/analytic)
	_ = costmodel.Params{}
	return nil
}
