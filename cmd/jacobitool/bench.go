package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/jacobi"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/ordering"
	"repro/internal/service"
	"repro/internal/tuner"
)

// benchReport is the headline-metric record the bench command emits; one
// BENCH_<date>.json per run accumulates the performance trajectory of the
// repository over time.
type benchReport struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version,omitempty"`
	MatrixSize int    `json:"matrix_size"`
	Dim        int    `json:"dim"`
	Sweeps     int    `json:"sweeps"`
	Ordering   string `json:"ordering"`

	EmulatedWallMs  float64 `json:"emulated_wall_ms"`
	MulticoreWallMs float64 `json:"multicore_wall_ms"`
	Speedup         float64 `json:"speedup"`

	// Per-pair kernel rates: wall time divided by the sweep's column-pair
	// count n(n-1)/2 per sweep — the regression guard's machine-size-free
	// compute metric.
	EmulatedNsPerPair  float64 `json:"emulated_ns_per_pair"`
	MulticoreNsPerPair float64 `json:"multicore_ns_per_pair"`
	// SweepAllocsPerOp is the measured allocation count of one fused block
	// pairing with a warm worker scratch — the sweep inner loop. Must be 0.
	SweepAllocsPerOp float64 `json:"sweep_allocs_per_op"`

	AnalyticMakespan float64 `json:"analytic_makespan"`
	BaselineModel    float64 `json:"baseline_model"`
	AnalyticRelErr   float64 `json:"analytic_rel_err"`

	// Ordering auto-tuner on the bench shape: the analytic one-sweep
	// makespan of the unpipelined baseline and of the tuner's winning
	// execution plan, in machine time units (Ts=1000ns, Tw=100ns).
	BaselineMakespanNs float64 `json:"baseline_makespan_ns"`
	TunedMakespanNs    float64 `json:"tuned_makespan_ns"`
	TunedOrdering      string  `json:"tuned_ordering,omitempty"`

	EmulatedMakespan float64 `json:"emulated_makespan"`
	Messages         int     `json:"messages"`
	Elements         int     `json:"elements"`

	ScheduleCacheBuilds int64 `json:"schedule_cache_builds"`
	ScheduleCacheHits   int64 `json:"schedule_cache_hits"`

	BatchJobs        int     `json:"batch_jobs"`
	BatchConcurrency int     `json:"batch_concurrency"`
	BatchMatrixSize  int     `json:"batch_matrix_size"`
	BatchJobsPerSec  float64 `json:"batch_jobs_per_sec"`
	BatchWallP99Ms   float64 `json:"batch_wall_p99_ms"`

	// The batched solve lane. BatchJobsPerSec above is the service's
	// headline throughput with lanes enabled (small jobs gathered
	// LaneWidth at a time into SIMD-lockstep lanes);
	// BatchUnbatchedJobsPerSec is the same batch solved one job per worker
	// on the multicore backend — the pre-lane configuration — measured in
	// the same process, so the pair is same-host by construction.
	LaneWidth                int     `json:"lane_width,omitempty"`
	BatchUnbatchedJobsPerSec float64 `json:"batch_unbatched_jobs_per_sec,omitempty"`
	BatchLaneJobsPerSec      float64 `json:"batch_lane_jobs_per_sec,omitempty"`
	// LaneFillRatio is jobs carried over lane capacity across the lane
	// run's dispatches (1.0 = every lane ran full).
	LaneFillRatio float64 `json:"lane_fill_ratio,omitempty"`
	// LaneNsPerPairPerJob is the lane kernel rate: wall time of a full
	// fixed-sweep lane divided by (jobs × pairs per sweep × sweeps).
	LaneNsPerPairPerJob float64 `json:"lane_ns_per_pair_per_job,omitempty"`
	// LaneAllocsPerOp is the steady-state allocation count of one batched
	// lane pairing round on a warm LaneScratch. Must be 0.
	LaneAllocsPerOp float64 `json:"lane_allocs_per_op"`
}

// cmdBench runs the headline benchmark suite: the same fixed-sweep
// eigensolve on the emulated and the multicore backends (wall-clock), the
// analytic backend against the closed-form cost model, and the sweep-
// schedule cache counters. With -json the metrics land in BENCH_<date>.json
// so the perf trajectory accumulates across runs.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	m := fs.Int("m", 512, "matrix size")
	d := fs.Int("d", 3, "hypercube dimension")
	sweeps := fs.Int("sweeps", 1, "fixed sweep count")
	ord := fs.String("o", "pbr", "ordering (br, pbr, d4, minalpha)")
	seed := fs.Int64("seed", 2026, "random matrix seed")
	batchN := fs.Int("batch", 16, "batch-throughput job count")
	batchC := fs.Int("batchc", 4, "batch-throughput concurrency")
	batchM := fs.Int("batchm", 96, "batch-throughput matrix size")
	laneW := fs.Int("lane-width", 8, "batched-lane width for the lane throughput run")
	asJSON := fs.Bool("json", false, "write the metrics to BENCH_<date>.json")
	out := fs.String("out", "", "JSON output path (default BENCH_<date>.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fam, err := ordering.FamilyByName(*ord)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	a := matrix.RandomSymmetric(*m, rng)
	base := jacobi.ParallelConfig{Family: fam, Ts: 1000, Tw: 100, FixedSweeps: *sweeps}

	rep := benchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		MatrixSize: *m,
		Dim:        *d,
		Sweeps:     *sweeps,
		Ordering:   fam.Name(),
	}

	fmt.Printf("bench: m=%d, d=%d (%d nodes), %d fixed sweep(s), %s ordering\n",
		*m, *d, 1<<uint(*d), *sweeps, fam.Name())

	// pairsPerRun is the rotation-pair count the wall-clock figures cover:
	// every column pair once per sweep.
	pairsPerRun := float64(*sweeps) * float64(*m) * float64(*m-1) / 2

	// Emulated backend: real serialized payloads + virtual clock, on the
	// reference kernels.
	emuCfg := base
	_, emuStats, err := jacobi.SolveParallel(a, *d, emuCfg)
	if err != nil {
		return fmt.Errorf("emulated solve: %w", err)
	}
	rep.EmulatedWallMs = float64(emuStats.WallTime.Microseconds()) / 1000
	rep.EmulatedMakespan = emuStats.Makespan
	rep.Messages = emuStats.Messages
	rep.Elements = emuStats.Elements
	rep.EmulatedNsPerPair = rep.EmulatedWallMs * 1e6 / pairsPerRun
	fmt.Printf("  emulated:  wall %8.1f ms   makespan %.0f units   %d messages   %.0f ns/pair\n",
		rep.EmulatedWallMs, emuStats.Makespan, emuStats.Messages, rep.EmulatedNsPerPair)

	// Multicore backend: shared memory, no clock, fused kernels — hardware
	// speed.
	mcCfg := base
	mcCfg.Backend = &engine.Multicore{}
	_, mcStats, err := jacobi.SolveParallel(a, *d, mcCfg)
	if err != nil {
		return fmt.Errorf("multicore solve: %w", err)
	}
	rep.MulticoreWallMs = float64(mcStats.WallTime.Microseconds()) / 1000
	if rep.MulticoreWallMs > 0 {
		rep.Speedup = rep.EmulatedWallMs / rep.MulticoreWallMs
	}
	rep.MulticoreNsPerPair = rep.MulticoreWallMs * 1e6 / pairsPerRun
	rep.SweepAllocsPerOp = sweepInnerLoopAllocs(a, *d)
	fmt.Printf("  multicore: wall %8.1f ms   (%.2fx vs emulated)   %.0f ns/pair   %.0f allocs/op\n",
		rep.MulticoreWallMs, rep.Speedup, rep.MulticoreNsPerPair, rep.SweepAllocsPerOp)

	// Analytic backend vs the closed-form model.
	anCfg := base
	anCfg.Backend = &engine.Analytic{Ts: 1000, Tw: 100}
	_, anStats, err := jacobi.SolveParallel(a, *d, anCfg)
	if err != nil {
		return fmt.Errorf("analytic solve: %w", err)
	}
	rep.AnalyticMakespan = anStats.Makespan
	rep.BaselineModel = float64(*sweeps) * costmodel.BaselineSweepCost(*d, costmodel.Params{M: float64(*m), Ts: 1000, Tw: 100})
	if rep.BaselineModel > 0 {
		rep.AnalyticRelErr = (anStats.Makespan - rep.BaselineModel) / rep.BaselineModel
	}
	fmt.Printf("  analytic:  makespan %.0f units   closed-form %.0f   rel err %+.2e\n",
		rep.AnalyticMakespan, rep.BaselineModel, rep.AnalyticRelErr)

	// Ordering auto-tuner on the bench shape: how much one tuned sweep
	// saves over the unpipelined baseline, analytically.
	tuneRep, err := tuner.Search(tuner.Shape{N: *m, Dim: *d}, tuner.Params{Ts: 1000, Tw: 100}, tuner.Options{Random: 2})
	if err != nil {
		return fmt.Errorf("tuner search: %w", err)
	}
	rep.BaselineMakespanNs = tuneRep.BaselineMakespan
	rep.TunedMakespanNs = tuneRep.Winner.TunedMakespan
	rep.TunedOrdering = tuneRep.Winner.FamilyName
	fmt.Printf("  tuned:     makespan %.0f units vs baseline %.0f (%s) — %.1f%% saved\n",
		rep.TunedMakespanNs, rep.BaselineMakespanNs, rep.TunedOrdering,
		100*(1-rep.TunedMakespanNs/rep.BaselineMakespanNs))

	// Batch-solve service throughput: batchN distinct convergent solves at
	// fixed concurrency through the worker pool (cache disabled so every
	// job is a real solve). Measured twice on the same specs in the same
	// process: unbatched (one multicore solve per worker — the pre-lane
	// configuration) and lane-routed (same-shape jobs gathered laneW at a
	// time into SIMD-lockstep lanes). The lane-routed rate is the
	// service's headline jobs/sec.
	mkSpecs := func(backend string) []service.JobSpec {
		specs := make([]service.JobSpec, *batchN)
		for i := range specs {
			srng := rand.New(rand.NewSource(int64(3000 + i)))
			specs[i] = service.JobSpec{
				Matrix:   matrix.RandomSymmetric(*batchM, srng),
				Dim:      2,
				Ordering: fam.Name(),
				Backend:  backend,
			}
		}
		return specs
	}
	runBatch := func(cfg service.Config, backend string) (float64, service.Snapshot, error) {
		svc := service.New(cfg)
		// Spec construction (random matrix generation) is benchmark setup,
		// not service throughput — build outside the timed window.
		specs := mkSpecs(backend)
		start := time.Now()
		jobs, err := svc.SubmitAll(context.Background(), specs)
		if err == nil {
			err = service.WaitAll(context.Background(), jobs)
		}
		if err == nil {
			// WaitAll swallows per-job failures by design; a headline metric
			// computed over failed jobs would corrupt the BENCH trajectory.
			for i, j := range jobs {
				if _, jerr := j.Result(); jerr != nil {
					err = fmt.Errorf("job %d: %w", i, jerr)
					break
				}
			}
		}
		dur := time.Since(start)
		snap := svc.Metrics()
		svc.Close()
		if err != nil {
			return 0, snap, err
		}
		return float64(*batchN) / dur.Seconds(), snap, nil
	}

	unbatched, _, err := runBatch(service.Config{Workers: *batchC, CacheCap: -1}, service.BackendMulticore)
	if err != nil {
		return fmt.Errorf("batch throughput (unbatched): %w", err)
	}
	rep.BatchJobs = *batchN
	rep.BatchConcurrency = *batchC
	rep.BatchMatrixSize = *batchM
	rep.BatchUnbatchedJobsPerSec = unbatched
	fmt.Printf("  batch:     %d jobs (n=%d) at concurrency %d unbatched — %.1f jobs/sec\n",
		*batchN, *batchM, *batchC, unbatched)

	laneRate, laneSnap, err := runBatch(service.Config{
		Workers:  *batchC,
		CacheCap: -1,
		// Route the whole batch through the lane: the threshold sits above
		// the batch matrix size so auto-selection picks the lane, and the
		// window is generous enough that one SubmitAll fills every lane.
		MulticoreThreshold: *batchM * 2,
		LaneWidth:          *laneW,
		LaneWindow:         50 * time.Millisecond,
	}, service.BackendAuto)
	if err != nil {
		return fmt.Errorf("batch throughput (lane): %w", err)
	}
	rep.LaneWidth = *laneW
	rep.BatchJobsPerSec = laneRate
	rep.BatchLaneJobsPerSec = laneRate
	rep.BatchWallP99Ms = laneSnap.WallP99Ms
	rep.LaneFillRatio = laneSnap.LaneFillRatio
	fmt.Printf("  lane:      %d jobs (n=%d) at lane width %d — %.1f jobs/sec (%.2fx unbatched, fill %.2f, p99 %.1f ms)\n",
		*batchN, *batchM, *laneW, laneRate, laneRate/unbatched, laneSnap.LaneFillRatio, laneSnap.WallP99Ms)

	rep.LaneNsPerPairPerJob = laneKernelRate(*batchM, *laneW, fam)
	rep.LaneAllocsPerOp = laneInnerLoopAllocs(*batchM, *laneW)
	fmt.Printf("  lane kernels: %.0f ns/pair/job   %.0f allocs/op\n",
		rep.LaneNsPerPairPerJob, rep.LaneAllocsPerOp)

	cache := ordering.SweepCacheStats()
	rep.ScheduleCacheBuilds = cache.Builds
	rep.ScheduleCacheHits = cache.Hits
	fmt.Printf("  schedule cache: %d build(s), %d hit(s)\n", cache.Builds, cache.Hits)

	if !*asJSON {
		return nil
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rep.Date)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

// sweepInnerLoopAllocs measures the allocation count of the sweep inner
// loop — one fused block pairing on a warm worker scratch, exactly what
// every multicore node runs per step — as the heap-allocation delta
// (runtime.MemStats.Mallocs) averaged over a few runs, pinned to this
// goroutine's OS thread so the counter reflects only the measured loop.
// The regression guard fails the build on any nonzero value.
func sweepInnerLoopAllocs(a *matrix.Dense, d int) float64 {
	blocks, err := engine.BuildBlocks(a, d)
	if err != nil || len(blocks) < 2 {
		return -1
	}
	sc := &engine.Scratch{}
	var conv engine.ConvTracker
	engine.PairCrossFused(blocks[0], blocks[1], sc, &conv) // warm the scratch
	const runs = 3
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		engine.PairCrossFused(blocks[0], blocks[1], sc, &conv)
		engine.PairWithinFused(blocks[0], sc, &conv)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}

// laneKernelRate measures the batched lane's per-pair rate: lanes jobs of
// size n advanced through a fixed two-sweep lane run, wall time divided by
// (jobs × sweeps × pairs per sweep) — the lane counterpart of the solo
// ns/pair figures.
func laneKernelRate(n, lanes int, fam ordering.Family) float64 {
	const sweeps = 2
	mk := func() []*jacobi.LaneRequest {
		reqs := make([]*jacobi.LaneRequest, lanes)
		for k := range reqs {
			srng := rand.New(rand.NewSource(int64(4000 + k)))
			reqs[k] = &jacobi.LaneRequest{A: matrix.RandomSymmetric(n, srng), FixedSweeps: sweeps}
		}
		return reqs
	}
	// One unmeasured run first: the timed figure should reflect the warm
	// steady state the service sees, not first-touch page faults.
	if _, err := jacobi.SolveLane(2, fam, false, mk()); err != nil {
		return -1
	}
	reqs := mk()
	start := time.Now()
	if _, err := jacobi.SolveLane(2, fam, false, reqs); err != nil {
		return -1
	}
	wallNs := float64(time.Since(start).Nanoseconds())
	pairs := float64(lanes) * sweeps * float64(n) * float64(n-1) / 2
	return wallNs / pairs
}

// laneInnerLoopAllocs measures the steady-state allocation count of one
// batched lane pairing round — a Within and a Cross on a warm LaneScratch,
// exactly the lane sweep loop's unit of work. The regression guard fails
// the build on any nonzero value.
func laneInnerLoopAllocs(n, lanes int) float64 {
	const w = 4 // columns per block group
	rng := rand.New(rand.NewSource(7))
	group := func() [][]float64 {
		g := make([][]float64, w)
		for i := range g {
			col := make([]float64, n*lanes)
			for r := range col {
				col[r] = rng.Float64()*2 - 1
			}
			g[i] = col
		}
		return g
	}
	xa, xu, ya, yu := group(), group(), group(), group()
	sc := kernel.NewLaneScratch(lanes, false)
	active := make([]float64, lanes)
	for k := range active {
		active[k] = -1
	}
	conv := make([]kernel.Conv, lanes)
	sc.Within(xa, xu, nil, active, conv) // warm the scratch
	sc.Cross(xa, xu, ya, yu, nil, nil, active, conv)
	const runs = 3
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		sc.Within(xa, xu, nil, active, conv)
		sc.Cross(xa, xu, ya, yu, nil, nil, active, conv)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}
