package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/jacobi"
	"repro/internal/matrix"
	"repro/internal/ordering"
	"repro/internal/service"
)

// benchReport is the headline-metric record the bench command emits; one
// BENCH_<date>.json per run accumulates the performance trajectory of the
// repository over time.
type benchReport struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version,omitempty"`
	MatrixSize int    `json:"matrix_size"`
	Dim        int    `json:"dim"`
	Sweeps     int    `json:"sweeps"`
	Ordering   string `json:"ordering"`

	EmulatedWallMs  float64 `json:"emulated_wall_ms"`
	MulticoreWallMs float64 `json:"multicore_wall_ms"`
	Speedup         float64 `json:"speedup"`

	// Per-pair kernel rates: wall time divided by the sweep's column-pair
	// count n(n-1)/2 per sweep — the regression guard's machine-size-free
	// compute metric.
	EmulatedNsPerPair  float64 `json:"emulated_ns_per_pair"`
	MulticoreNsPerPair float64 `json:"multicore_ns_per_pair"`
	// SweepAllocsPerOp is the measured allocation count of one fused block
	// pairing with a warm worker scratch — the sweep inner loop. Must be 0.
	SweepAllocsPerOp float64 `json:"sweep_allocs_per_op"`

	AnalyticMakespan float64 `json:"analytic_makespan"`
	BaselineModel    float64 `json:"baseline_model"`
	AnalyticRelErr   float64 `json:"analytic_rel_err"`

	EmulatedMakespan float64 `json:"emulated_makespan"`
	Messages         int     `json:"messages"`
	Elements         int     `json:"elements"`

	ScheduleCacheBuilds int64 `json:"schedule_cache_builds"`
	ScheduleCacheHits   int64 `json:"schedule_cache_hits"`

	BatchJobs        int     `json:"batch_jobs"`
	BatchConcurrency int     `json:"batch_concurrency"`
	BatchMatrixSize  int     `json:"batch_matrix_size"`
	BatchJobsPerSec  float64 `json:"batch_jobs_per_sec"`
	BatchWallP99Ms   float64 `json:"batch_wall_p99_ms"`
}

// cmdBench runs the headline benchmark suite: the same fixed-sweep
// eigensolve on the emulated and the multicore backends (wall-clock), the
// analytic backend against the closed-form cost model, and the sweep-
// schedule cache counters. With -json the metrics land in BENCH_<date>.json
// so the perf trajectory accumulates across runs.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	m := fs.Int("m", 512, "matrix size")
	d := fs.Int("d", 3, "hypercube dimension")
	sweeps := fs.Int("sweeps", 1, "fixed sweep count")
	ord := fs.String("o", "pbr", "ordering (br, pbr, d4, minalpha)")
	seed := fs.Int64("seed", 2026, "random matrix seed")
	batchN := fs.Int("batch", 16, "batch-throughput job count")
	batchC := fs.Int("batchc", 4, "batch-throughput concurrency")
	batchM := fs.Int("batchm", 96, "batch-throughput matrix size")
	asJSON := fs.Bool("json", false, "write the metrics to BENCH_<date>.json")
	out := fs.String("out", "", "JSON output path (default BENCH_<date>.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fam, err := ordering.FamilyByName(*ord)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	a := matrix.RandomSymmetric(*m, rng)
	base := jacobi.ParallelConfig{Family: fam, Ts: 1000, Tw: 100, FixedSweeps: *sweeps}

	rep := benchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		MatrixSize: *m,
		Dim:        *d,
		Sweeps:     *sweeps,
		Ordering:   fam.Name(),
	}

	fmt.Printf("bench: m=%d, d=%d (%d nodes), %d fixed sweep(s), %s ordering\n",
		*m, *d, 1<<uint(*d), *sweeps, fam.Name())

	// pairsPerRun is the rotation-pair count the wall-clock figures cover:
	// every column pair once per sweep.
	pairsPerRun := float64(*sweeps) * float64(*m) * float64(*m-1) / 2

	// Emulated backend: real serialized payloads + virtual clock, on the
	// reference kernels.
	emuCfg := base
	_, emuStats, err := jacobi.SolveParallel(a, *d, emuCfg)
	if err != nil {
		return fmt.Errorf("emulated solve: %w", err)
	}
	rep.EmulatedWallMs = float64(emuStats.WallTime.Microseconds()) / 1000
	rep.EmulatedMakespan = emuStats.Makespan
	rep.Messages = emuStats.Messages
	rep.Elements = emuStats.Elements
	rep.EmulatedNsPerPair = rep.EmulatedWallMs * 1e6 / pairsPerRun
	fmt.Printf("  emulated:  wall %8.1f ms   makespan %.0f units   %d messages   %.0f ns/pair\n",
		rep.EmulatedWallMs, emuStats.Makespan, emuStats.Messages, rep.EmulatedNsPerPair)

	// Multicore backend: shared memory, no clock, fused kernels — hardware
	// speed.
	mcCfg := base
	mcCfg.Backend = &engine.Multicore{}
	_, mcStats, err := jacobi.SolveParallel(a, *d, mcCfg)
	if err != nil {
		return fmt.Errorf("multicore solve: %w", err)
	}
	rep.MulticoreWallMs = float64(mcStats.WallTime.Microseconds()) / 1000
	if rep.MulticoreWallMs > 0 {
		rep.Speedup = rep.EmulatedWallMs / rep.MulticoreWallMs
	}
	rep.MulticoreNsPerPair = rep.MulticoreWallMs * 1e6 / pairsPerRun
	rep.SweepAllocsPerOp = sweepInnerLoopAllocs(a, *d)
	fmt.Printf("  multicore: wall %8.1f ms   (%.2fx vs emulated)   %.0f ns/pair   %.0f allocs/op\n",
		rep.MulticoreWallMs, rep.Speedup, rep.MulticoreNsPerPair, rep.SweepAllocsPerOp)

	// Analytic backend vs the closed-form model.
	anCfg := base
	anCfg.Backend = &engine.Analytic{Ts: 1000, Tw: 100}
	_, anStats, err := jacobi.SolveParallel(a, *d, anCfg)
	if err != nil {
		return fmt.Errorf("analytic solve: %w", err)
	}
	rep.AnalyticMakespan = anStats.Makespan
	rep.BaselineModel = float64(*sweeps) * costmodel.BaselineSweepCost(*d, costmodel.Params{M: float64(*m), Ts: 1000, Tw: 100})
	if rep.BaselineModel > 0 {
		rep.AnalyticRelErr = (anStats.Makespan - rep.BaselineModel) / rep.BaselineModel
	}
	fmt.Printf("  analytic:  makespan %.0f units   closed-form %.0f   rel err %+.2e\n",
		rep.AnalyticMakespan, rep.BaselineModel, rep.AnalyticRelErr)

	// Batch-solve service throughput: batchN distinct convergent solves at
	// fixed concurrency through the worker pool (cache disabled so every
	// job is a real solve) — the headline jobs/sec of the service layer.
	svc := service.New(service.Config{Workers: *batchC, CacheCap: -1})
	specs := make([]service.JobSpec, *batchN)
	for i := range specs {
		srng := rand.New(rand.NewSource(int64(3000 + i)))
		specs[i] = service.JobSpec{
			Matrix:   matrix.RandomSymmetric(*batchM, srng),
			Dim:      2,
			Ordering: fam.Name(),
			Backend:  service.BackendMulticore,
		}
	}
	batchStart := time.Now()
	jobs, err := svc.SubmitAll(context.Background(), specs)
	if err == nil {
		err = service.WaitAll(context.Background(), jobs)
	}
	if err == nil {
		// WaitAll swallows per-job failures by design; a headline metric
		// computed over failed jobs would corrupt the BENCH trajectory.
		for i, j := range jobs {
			if _, jerr := j.Result(); jerr != nil {
				err = fmt.Errorf("job %d: %w", i, jerr)
				break
			}
		}
	}
	if err != nil {
		svc.Close()
		return fmt.Errorf("batch throughput: %w", err)
	}
	batchDur := time.Since(batchStart)
	snap := svc.Metrics()
	svc.Close()
	rep.BatchJobs = *batchN
	rep.BatchConcurrency = *batchC
	rep.BatchMatrixSize = *batchM
	rep.BatchJobsPerSec = float64(*batchN) / batchDur.Seconds()
	rep.BatchWallP99Ms = snap.WallP99Ms
	fmt.Printf("  batch:     %d jobs (n=%d) at concurrency %d in %v — %.1f jobs/sec (p99 %.1f ms)\n",
		*batchN, *batchM, *batchC, batchDur.Round(time.Millisecond), rep.BatchJobsPerSec, rep.BatchWallP99Ms)

	cache := ordering.SweepCacheStats()
	rep.ScheduleCacheBuilds = cache.Builds
	rep.ScheduleCacheHits = cache.Hits
	fmt.Printf("  schedule cache: %d build(s), %d hit(s)\n", cache.Builds, cache.Hits)

	if !*asJSON {
		return nil
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rep.Date)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

// sweepInnerLoopAllocs measures the allocation count of the sweep inner
// loop — one fused block pairing on a warm worker scratch, exactly what
// every multicore node runs per step — as the heap-allocation delta
// (runtime.MemStats.Mallocs) averaged over a few runs, pinned to this
// goroutine's OS thread so the counter reflects only the measured loop.
// The regression guard fails the build on any nonzero value.
func sweepInnerLoopAllocs(a *matrix.Dense, d int) float64 {
	blocks, err := engine.BuildBlocks(a, d)
	if err != nil || len(blocks) < 2 {
		return -1
	}
	sc := &engine.Scratch{}
	var conv engine.ConvTracker
	engine.PairCrossFused(blocks[0], blocks[1], sc, &conv) // warm the scratch
	const runs = 3
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		engine.PairCrossFused(blocks[0], blocks[1], sc, &conv)
		engine.PairWithinFused(blocks[0], sc, &conv)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}
