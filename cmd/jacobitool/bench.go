package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/jacobi"
	"repro/internal/matrix"
	"repro/internal/ordering"
)

// benchReport is the headline-metric record the bench command emits; one
// BENCH_<date>.json per run accumulates the performance trajectory of the
// repository over time.
type benchReport struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version,omitempty"`
	MatrixSize int    `json:"matrix_size"`
	Dim        int    `json:"dim"`
	Sweeps     int    `json:"sweeps"`
	Ordering   string `json:"ordering"`

	EmulatedWallMs  float64 `json:"emulated_wall_ms"`
	MulticoreWallMs float64 `json:"multicore_wall_ms"`
	Speedup         float64 `json:"speedup"`

	AnalyticMakespan float64 `json:"analytic_makespan"`
	BaselineModel    float64 `json:"baseline_model"`
	AnalyticRelErr   float64 `json:"analytic_rel_err"`

	EmulatedMakespan float64 `json:"emulated_makespan"`
	Messages         int     `json:"messages"`
	Elements         int     `json:"elements"`

	ScheduleCacheBuilds int64 `json:"schedule_cache_builds"`
	ScheduleCacheHits   int64 `json:"schedule_cache_hits"`
}

// cmdBench runs the headline benchmark suite: the same fixed-sweep
// eigensolve on the emulated and the multicore backends (wall-clock), the
// analytic backend against the closed-form cost model, and the sweep-
// schedule cache counters. With -json the metrics land in BENCH_<date>.json
// so the perf trajectory accumulates across runs.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	m := fs.Int("m", 512, "matrix size")
	d := fs.Int("d", 3, "hypercube dimension")
	sweeps := fs.Int("sweeps", 1, "fixed sweep count")
	ord := fs.String("o", "pbr", "ordering (br, pbr, d4, minalpha)")
	seed := fs.Int64("seed", 2026, "random matrix seed")
	asJSON := fs.Bool("json", false, "write the metrics to BENCH_<date>.json")
	out := fs.String("out", "", "JSON output path (default BENCH_<date>.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fam, err := ordering.FamilyByName(*ord)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	a := matrix.RandomSymmetric(*m, rng)
	base := jacobi.ParallelConfig{Family: fam, Ts: 1000, Tw: 100, FixedSweeps: *sweeps}

	rep := benchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		MatrixSize: *m,
		Dim:        *d,
		Sweeps:     *sweeps,
		Ordering:   fam.Name(),
	}

	fmt.Printf("bench: m=%d, d=%d (%d nodes), %d fixed sweep(s), %s ordering\n",
		*m, *d, 1<<uint(*d), *sweeps, fam.Name())

	// Emulated backend: real serialized payloads + virtual clock.
	emuCfg := base
	_, emuStats, err := jacobi.SolveParallel(a, *d, emuCfg)
	if err != nil {
		return fmt.Errorf("emulated solve: %w", err)
	}
	rep.EmulatedWallMs = float64(emuStats.WallTime.Microseconds()) / 1000
	rep.EmulatedMakespan = emuStats.Makespan
	rep.Messages = emuStats.Messages
	rep.Elements = emuStats.Elements
	fmt.Printf("  emulated:  wall %8.1f ms   makespan %.0f units   %d messages\n",
		rep.EmulatedWallMs, emuStats.Makespan, emuStats.Messages)

	// Multicore backend: shared memory, no clock — hardware speed.
	mcCfg := base
	mcCfg.Backend = &engine.Multicore{}
	_, mcStats, err := jacobi.SolveParallel(a, *d, mcCfg)
	if err != nil {
		return fmt.Errorf("multicore solve: %w", err)
	}
	rep.MulticoreWallMs = float64(mcStats.WallTime.Microseconds()) / 1000
	if rep.MulticoreWallMs > 0 {
		rep.Speedup = rep.EmulatedWallMs / rep.MulticoreWallMs
	}
	fmt.Printf("  multicore: wall %8.1f ms   (%.2fx vs emulated)\n",
		rep.MulticoreWallMs, rep.Speedup)

	// Analytic backend vs the closed-form model.
	anCfg := base
	anCfg.Backend = &engine.Analytic{Ts: 1000, Tw: 100}
	_, anStats, err := jacobi.SolveParallel(a, *d, anCfg)
	if err != nil {
		return fmt.Errorf("analytic solve: %w", err)
	}
	rep.AnalyticMakespan = anStats.Makespan
	rep.BaselineModel = float64(*sweeps) * costmodel.BaselineSweepCost(*d, costmodel.Params{M: float64(*m), Ts: 1000, Tw: 100})
	if rep.BaselineModel > 0 {
		rep.AnalyticRelErr = (anStats.Makespan - rep.BaselineModel) / rep.BaselineModel
	}
	fmt.Printf("  analytic:  makespan %.0f units   closed-form %.0f   rel err %+.2e\n",
		rep.AnalyticMakespan, rep.BaselineModel, rep.AnalyticRelErr)

	cache := ordering.SweepCacheStats()
	rep.ScheduleCacheBuilds = cache.Builds
	rep.ScheduleCacheHits = cache.Hits
	fmt.Printf("  schedule cache: %d build(s), %d hit(s)\n", cache.Builds, cache.Hits)

	if !*asJSON {
		return nil
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rep.Date)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}
