package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/jacobi"
	"repro/internal/matrix"
	"repro/internal/ordering"
	"repro/internal/trace"
)

// cmdPortSweep prints the port-count ablation (E10): how each pipelined
// ordering's relative cost changes as the number of simultaneously usable
// links per node grows from 1 (one-port) to d (all-port).
func cmdPortSweep(args []string) error {
	fs := flag.NewFlagSet("portsweep", flag.ContinueOnError)
	d := fs.Int("d", 8, "hypercube dimension")
	logM := fs.Int("m", 23, "log2 of matrix size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ks := []int{1, 2, 3, 4, 6, 8, 0}
	pts, err := costmodel.PortCountSweep(*d, ks, costmodel.Params{
		M: math.Pow(2, float64(*logM)), Ts: 1000, Tw: 100,
	})
	if err != nil {
		return err
	}
	fmt.Printf("relative communication cost vs port count (d=%d, m=2^%d):\n", *d, *logM)
	fmt.Println("  ports   pipelined-BR   permuted-BR   degree-4")
	for _, p := range pts {
		label := fmt.Sprintf("%5d", p.K)
		if p.K == 0 {
			label = "  all"
		}
		fmt.Printf("  %s      %.3f          %.3f        %.3f\n",
			label, p.PipelinedBR, p.PermutedBR, p.Degree4)
	}
	fmt.Println()
	fmt.Println("degree-4 saturates around 4 ports (its windows hold 4 distinct links);")
	fmt.Println("permuted-BR under deep pipelining keeps gaining with every port.")
	return nil
}

// cmdBalance shows the link-balance story statically (schedule analysis)
// and dynamically (traced execution).
func cmdBalance(args []string) error {
	fs := flag.NewFlagSet("balance", flag.ContinueOnError)
	d := fs.Int("d", 4, "hypercube dimension")
	m := fs.Int("m", 32, "matrix size for the traced run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("static per-phase link balance at e=%d (imbalance 1.0 = uniform):\n", *d)
	for _, o := range core.Orderings() {
		fam, err := o.Family()
		if err != nil {
			return err
		}
		u, err := ordering.PhaseLinkUsage(fam, *d)
		if err != nil {
			return err
		}
		fmt.Printf("  %-9s counts=%v  imbalance=%.2f  entropy=%.3f\n",
			o, u.PerDim, u.Imbalance, u.BalanceEntropy())
	}
	fmt.Println()
	fmt.Println("dynamic check: one traced sweep of the distributed solver")
	rng := rand.New(rand.NewSource(7))
	a := matrix.RandomSymmetric(*m, rng)
	for _, o := range []core.Ordering{core.BR, core.PermutedBR} {
		fam, err := o.Family()
		if err != nil {
			return err
		}
		col := trace.NewCollector()
		cfg := jacobi.ParallelConfig{Family: fam, Ts: 1000, Tw: 100, FixedSweeps: 1, Trace: col.Record}
		if _, _, err := jacobi.SolveParallel(a, *d, cfg); err != nil {
			return err
		}
		sum := col.Summarize(*d)
		fmt.Printf("\n%s ordering (busiest dimension carries %.0f%% of messages):\n", o, sum.MaxDimShare*100)
		fmt.Print(sum.FormatDimShares())
	}
	return nil
}

// cmdSVD runs the SVD variant of the one-sided method.
func cmdSVD(args []string) error {
	fs := flag.NewFlagSet("svd", flag.ContinueOnError)
	rows := fs.Int("rows", 24, "matrix rows")
	cols := fs.Int("cols", 12, "matrix columns")
	d := fs.Int("d", 2, "virtual hypercube dimension for the ordering")
	ord := fs.String("o", "d4", "ordering (br, pbr, d4, minalpha)")
	seed := fs.Int64("seed", 9, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fam, err := core.Ordering(*ord).Family()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	a := matrix.RandomDense(*rows, *cols, rng)
	svd, err := jacobi.SolveSVD(a, *d, fam, jacobi.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("SVD of a random %dx%d matrix (%s ordering): %d sweeps, converged=%v\n",
		*rows, *cols, *ord, svd.Sweeps, svd.Converged)
	show := len(svd.Values)
	if show > 8 {
		show = 8
	}
	fmt.Printf("  largest singular values: %.4v\n", svd.Values[:show])
	fmt.Printf("  reconstruction error ||A - UΣVᵀ||/||A||: %.2e\n",
		jacobi.SVDReconstructionError(a, svd))
	fmt.Printf("  orthogonality: U %.2e, V %.2e\n",
		matrix.OrthogonalityError(svd.U), matrix.OrthogonalityError(svd.V))
	return nil
}
