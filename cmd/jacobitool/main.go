// Command jacobitool is the command-line interface to the reproduction of
// "Jacobi Orderings for Multi-Port Hypercubes" (Royo, González,
// Valero-García; IPPS 1998). It prints the paper's link sequences, verifies
// the orderings, regenerates every table and figure of the evaluation
// section, and runs eigensolves on the emulated multi-port hypercube.
//
// Usage:
//
//	jacobitool <command> [flags]
//
// Commands:
//
//	sequences  print and analyze the D_e link sequences of every ordering
//	verify     machine-check the round-robin property of the orderings
//	table1     regenerate Table 1 (α of permuted-BR vs lower bound)
//	table2     regenerate Table 2 (convergence of the orderings)
//	figure2    regenerate a panel of Figure 2 (relative communication cost)
//	alphatable α for every ordering and phase (ablation E7)
//	degrees    sequence degree for every ordering and phase (ablation E8)
//	pipeline   print a communication-pipelining stage schedule
//	solve      run a distributed eigensolve on a pluggable execution backend
//	simulate   compare emulated communication time against the analytic model
//	bench      headline backend metrics, optionally written as BENCH_<date>.json
//	tune       search ordering/pipelining plans per job shape; -data persists
//	           the winners into the registry `serve -data` auto-selects from
//	serve      the concurrent batch-solve service over its HTTP API (v2 + v1
//	           shim); -data makes it durable (crash recovery + solve resume)
//	batch      solve a manifest of problems concurrently, with a summary table
//	submit     submit one eigensolve through the client API (local or -remote)
//	watch      stream a remote job's progress events until it finishes
//	loadgen    open-loop Poisson load driver with a JSON latency/SLO report
//
// serve, batch, submit, watch and loadgen are all consumers of the public
// client package: one binary drives an in-process pool or a remote server
// with one -remote flag.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "sequences":
		err = cmdSequences(args)
	case "verify":
		err = cmdVerify(args)
	case "table1":
		err = cmdTable1(args)
	case "table2":
		err = cmdTable2(args)
	case "figure2":
		err = cmdFigure2(args)
	case "alphatable":
		err = cmdAlphaTable(args)
	case "degrees":
		err = cmdDegrees(args)
	case "pipeline":
		err = cmdPipeline(args)
	case "solve":
		err = cmdSolve(args)
	case "simulate":
		err = cmdSimulate(args)
	case "portsweep":
		err = cmdPortSweep(args)
	case "balance":
		err = cmdBalance(args)
	case "svd":
		err = cmdSVD(args)
	case "bench":
		err = cmdBench(args)
	case "tune":
		err = cmdTune(args)
	case "serve":
		err = cmdServe(args)
	case "batch":
		err = cmdBatch(args)
	case "submit":
		err = cmdSubmit(args)
	case "watch":
		err = cmdWatch(args)
	case "loadgen":
		err = cmdLoadgen(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "jacobitool: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jacobitool %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `jacobitool — Jacobi orderings for multi-port hypercubes (IPPS 1998)

usage: jacobitool <command> [flags]

commands:
  sequences   -e N                 print the D_e sequences of every ordering
  verify      -d D [-sweeps S]     machine-check the round-robin property
  table1      [-from E] [-to E]    Table 1: α(permuted-BR) vs lower bound
  table2      [-trials N] [-tol X] Table 2: average sweeps to convergence
  figure2     -m LOGM [-maxd D]    Figure 2 panel: relative comm cost curves
  alphatable  [-max E]             α for every ordering (ablation)
  degrees     [-max E]             sequence degree for every ordering
  pipeline    -e E -q Q [-o ORD]   print a pipelined stage schedule
  solve       -m N [-d D] [-o ORD] [-backend B] [-pipelined] [-oneport] eigensolve
  simulate    -m N [-d D] [-sweeps S] emulated vs analytic communication time
  bench       [-m N] [-d D] [-json]  headline backend metrics (BENCH_<date>.json)
  tune        [-shapes n:d[:p],...] [-manifest F] [-data DIR] [-budget T] [-json] tuned-schedule search per job shape
  serve       [-addr A] [-workers W] [-data DIR] batch-solve service over HTTP (v2 + v1 shim; -data = durable)
  batch       [-manifest F] [-remote URL] [-check] solve a manifest of problems concurrently
  submit      [-remote URL] [-n N] [-d D] [-watch] submit one eigensolve via the client API
  watch       -remote URL JOB        stream a remote job's progress events
  loadgen     [-remote URL] [-jobs N] [-rate R] [-out F] open-loop Poisson load run with JSON report
  portsweep   [-d D] [-m LOGM]     cost vs number of ports (k-port ablation)
  balance     [-d D] [-m N]        static + traced link-balance comparison
  svd         [-rows R] [-cols C]  singular value decomposition demo
`)
}
