package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/store"
	"repro/internal/tuner"
)

// cmdTune runs the ordering auto-tuner over a manifest of job shapes and,
// with -data, persists every winner into the durable store's tuned-schedule
// log — the registry `jacobitool serve -data` warm-loads at boot. Shapes
// come from -shapes ("n:d[:p]" entries) and/or a -manifest JSON file; each
// shape's search scores the paper's ordering families plus transform-derived
// candidates against the analytic backend, validates the scores against the
// closed-form cost model, and keeps the legal schedule with the smallest
// one-sweep makespan (the unpipelined baseline is always candidate zero, so
// a winner never loses to it).
func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ContinueOnError)
	shapes := fs.String("shapes", "", "comma-separated job shapes as n:d[:p] (e.g. 512:3,256:2:1)")
	manifest := fs.String("manifest", "", `JSON shape manifest: [{"n":512,"dim":3,"ports":0}, ...]`)
	dataDir := fs.String("data", "", "durable data directory: append winners to its tuned-schedule log")
	budget := fs.Duration("budget", 0, "wall-clock budget for the whole run (0 = none); shapes already searched keep their winners")
	candidates := fs.Int("candidates", 0, "max candidates scored per shape beyond the baseline (0 = no cap)")
	random := fs.Int("random", 0, "transform-derived candidate families per shape (0 = tuner default)")
	seed := fs.Int64("seed", 0, "candidate-generation seed (0 = tuner default; searches are deterministic per seed)")
	ts := fs.Float64("ts", 0, "link startup time in machine units (0 = 1000, the paper's Ts)")
	tw := fs.Float64("tw", 0, "per-element transfer time in machine units (0 = 100, the paper's Tw)")
	baseline := fs.String("baseline", "", "baseline ordering candidates must beat (default pbr)")
	asJSON := fs.Bool("json", false, "emit the full search reports as JSON instead of the summary table")
	out := fs.String("out", "", "write the JSON reports to this path instead of stdout (implies -json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	list, err := tuneShapes(*shapes, *manifest)
	if err != nil {
		return err
	}
	if len(list) == 0 {
		return fmt.Errorf("no shapes: pass -shapes n:d[:p],... and/or -manifest FILE")
	}

	var st *store.Store
	if *dataDir != "" {
		if st, err = store.Open(*dataDir); err != nil {
			return err
		}
		defer st.Close()
	}

	opt := tuner.Options{
		Baseline:      *baseline,
		Random:        *random,
		Seed:          *seed,
		MaxCandidates: *candidates,
	}
	if *budget > 0 {
		opt.Deadline = time.Now().Add(*budget)
	}
	params := tuner.Params{Ts: *ts, Tw: *tw}

	reports := make([]*tuner.Report, 0, len(list))
	for _, sh := range list {
		rep, err := tuner.Search(sh, params, opt)
		if err != nil {
			return fmt.Errorf("shape %s: %w", sh.Key(), err)
		}
		reports = append(reports, rep)
		if st != nil {
			if err := st.AppendTuned(rep.Winner.Record()); err != nil {
				return fmt.Errorf("shape %s: persist winner: %w", sh.Key(), err)
			}
		}
	}

	if *out != "" || *asJSON {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *out != "" {
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("jacobitool tune: wrote %s\n", *out)
		} else {
			os.Stdout.Write(data)
		}
		if st == nil {
			return nil
		}
	}

	fmt.Printf("%-22s %-14s %4s %14s %14s %7s %6s\n",
		"shape", "winner", "pipe", "baseline", "tuned", "gain%", "tried")
	for _, rep := range reports {
		w := rep.Winner
		pipe := "no"
		if w.Pipelined {
			pipe = "yes"
		}
		gain := 0.0
		if w.BaselineMakespan > 0 {
			gain = 100 * (w.BaselineMakespan - w.TunedMakespan) / w.BaselineMakespan
		}
		fmt.Printf("%-22s %-14s %4s %14.0f %14.0f %6.1f%% %6d\n",
			rep.Shape.Key(), w.FamilyName, pipe,
			w.BaselineMakespan, w.TunedMakespan, gain, rep.Tried)
	}
	if st != nil {
		fmt.Printf("jacobitool tune: %d winner(s) persisted to %s\n", len(reports), *dataDir)
	}
	return nil
}

// tuneShapes merges the -shapes list and the -manifest file into one shape
// set, in the order given (duplicates keep the last occurrence's position
// in search order; the registry is last-writer-wins anyway).
func tuneShapes(spec, manifestPath string) ([]tuner.Shape, error) {
	var list []tuner.Shape
	if spec != "" {
		for _, part := range strings.Split(spec, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			sh, err := parseShape(part)
			if err != nil {
				return nil, err
			}
			list = append(list, sh)
		}
	}
	if manifestPath != "" {
		data, err := os.ReadFile(manifestPath)
		if err != nil {
			return nil, err
		}
		var entries []struct {
			N     int    `json:"n"`
			Dim   int    `json:"dim"`
			Ports int    `json:"ports"`
			Topo  string `json:"topology"`
		}
		if err := json.Unmarshal(data, &entries); err != nil {
			return nil, fmt.Errorf("manifest %s: %w", manifestPath, err)
		}
		for _, e := range entries {
			list = append(list, tuner.Shape{N: e.N, Dim: e.Dim, Ports: e.Ports, Topology: e.Topo})
		}
	}
	return list, nil
}

// parseShape parses one "n:d[:p]" shape spec.
func parseShape(s string) (tuner.Shape, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return tuner.Shape{}, fmt.Errorf("shape %q: want n:d or n:d:p", s)
	}
	nums := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return tuner.Shape{}, fmt.Errorf("shape %q: %w", s, err)
		}
		nums[i] = v
	}
	sh := tuner.Shape{N: nums[0], Dim: nums[1]}
	if len(nums) == 3 {
		sh.Ports = nums[2]
	}
	return sh, nil
}
