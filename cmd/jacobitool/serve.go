package main

import (
	"flag"
	"fmt"
	"net/http"

	"repro/internal/service"
)

// cmdServe runs the batch-solve service behind its HTTP JSON API.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8473", "listen address")
	workers := fs.Int("workers", 0, "solve-pool size (0 = GOMAXPROCS, capped at 8)")
	queueCap := fs.Int("queue", 0, "queued-job capacity (0 = 1024)")
	threshold := fs.Int("threshold", 0, "matrix size at which auto-selection picks the multicore backend (0 = 64)")
	cacheCap := fs.Int("cache", 0, "result-cache capacity in entries (0 = 256, negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	svc := service.New(service.Config{
		Workers:            *workers,
		QueueCap:           *queueCap,
		MulticoreThreshold: *threshold,
		CacheCap:           *cacheCap,
	})
	defer svc.Close()

	fmt.Printf("jacobitool serve: batch-solve service on %s (%d workers)\n", *addr, svc.Workers())
	fmt.Println("  POST   /api/v1/jobs             submit {random:{n,seed}|matrix:{n,data}, dim, ordering, backend, ...}")
	fmt.Println("  GET    /api/v1/jobs             list job statuses")
	fmt.Println("  GET    /api/v1/jobs/{id}        job status")
	fmt.Println("  DELETE /api/v1/jobs/{id}        cancel a job")
	fmt.Println("  GET    /api/v1/jobs/{id}/result finished job's result")
	fmt.Println("  GET    /api/v1/metrics          service metrics")
	fmt.Println("  GET    /healthz                 liveness")
	return http.ListenAndServe(*addr, service.NewHandler(svc))
}
