package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
)

// cmdServe runs the batch-solve service behind its HTTP API (v2 + the v1
// shim), with header/idle timeouts on the listener and a graceful drain on
// SIGINT/SIGTERM: the HTTP server stops accepting and drains in-flight
// requests, then the service shuts down (canceling live jobs at their next
// sweep boundary).
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8473", "listen address (port 0 picks a free port; the resolved address is printed)")
	workers := fs.Int("workers", 0, "solve-pool size (0 = GOMAXPROCS, capped at 8)")
	queueCap := fs.Int("queue", 0, "queued-job capacity (0 = 1024)")
	threshold := fs.Int("threshold", 0, "matrix size at which auto-selection picks the multicore backend (0 = 64, negative = never auto-select multicore)")
	cacheCap := fs.Int("cache", 0, "result-cache capacity in entries (0 = 256, negative disables)")
	retain := fs.Int("retain", 0, "finished-job records kept for status/result queries (0 = 4096, negative retains everything)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	svc := service.New(service.Config{
		Workers:            *workers,
		QueueCap:           *queueCap,
		MulticoreThreshold: *threshold,
		CacheCap:           *cacheCap,
		RetainJobs:         *retain,
	})
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           httpapi.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	fmt.Printf("jacobitool serve: batch-solve service on %s (%d workers)\n", ln.Addr(), svc.Workers())
	fmt.Println("  POST   /api/v2/jobs             submit {random:{n,seed}|matrix:{n,data}, dim, ordering, backend, idempotency_key, ...}")
	fmt.Println("  POST   /api/v2/batch            submit {jobs:[...]} in one request")
	fmt.Println("  GET    /api/v2/jobs             list job statuses (?cursor=&limit=)")
	fmt.Println("  GET    /api/v2/jobs/{id}        job status")
	fmt.Println("  DELETE /api/v2/jobs/{id}        cancel a job")
	fmt.Println("  GET    /api/v2/jobs/{id}/result finished job's result")
	fmt.Println("  GET    /api/v2/jobs/{id}/events progress stream (NDJSON; SSE via Accept)")
	fmt.Println("  GET    /api/v2/metrics          service metrics")
	fmt.Println("  /api/v1/*                       v1 compatibility shim; GET /healthz liveness")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop() // a second signal kills immediately
		fmt.Println("jacobitool serve: signal received, draining…")
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Shutdown first so in-flight requests (event streams included)
		// finish cleanly, then close the service — the deferred Close
		// cancels whatever is still running. Streams of live jobs can
		// outlast the drain deadline; Shutdown then reports the deadline,
		// which is expected, and Close ends those jobs (terminal events
		// close the streams).
		err := srv.Shutdown(shCtx)
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Println("jacobitool serve: drain deadline reached, closing live jobs")
			err = nil
		}
		<-errCh // Serve has returned http.ErrServerClosed
		return err
	}
}
