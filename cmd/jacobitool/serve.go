package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
)

// cmdServe runs the batch-solve service behind its HTTP API (v2 + the v1
// shim), with header/idle timeouts on the listener and a graceful drain on
// SIGINT/SIGTERM: the HTTP server stops accepting, in-flight requests
// (event streams included) get their terminal events, then the listener
// closes. With -data the service is durable: jobs are journaled and
// checkpointed there, and a restarted server recovers them — finished
// results are served from the store, queued jobs re-run, in-flight jobs
// resume from their last sweep checkpoint.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8473", "listen address (port 0 picks a free port; the resolved address is printed)")
	workers := fs.Int("workers", 0, "solve-pool size (0 = GOMAXPROCS, capped at 8)")
	queueCap := fs.Int("queue", 0, "queued-job capacity (0 = 1024)")
	threshold := fs.Int("threshold", 0, "matrix size at which auto-selection picks the multicore backend (0 = 64, negative = never auto-select multicore)")
	cacheCap := fs.Int("cache", 0, "result-cache capacity in entries (0 = 256, negative disables)")
	cacheMax := fs.Int64("cache-max", 0, "result-cache byte budget (0 = entries-only bound)")
	laneW := fs.Int("lane-width", 0, "batched-lane width for small jobs (0 disables; >= 2 enables SIMD-lockstep lanes)")
	laneWin := fs.Duration("lane-window", 0, "how long a lane leader waits for same-shape lane mates (0 = service default)")
	retain := fs.Int("retain", 0, "finished-job records kept for status/result queries (0 = 4096, negative retains everything)")
	quota := fs.Int("tenant-quota", 0, "per-tenant queued-job quota (0 disables)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant submit rate limit in jobs/sec (0 disables)")
	tenantBurst := fs.Int("tenant-burst", 0, "per-tenant submit burst (0 = ceil of -tenant-rate)")
	shedHW := fs.Int("shed-high-water", 0, "queue depth at which lowest-priority queued jobs are shed (0 disables)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	dataDir := fs.String("data", "", "durable data directory (empty = in-memory only): journal + sweep checkpoints; a restart recovers and resumes jobs")
	ckptEvery := fs.Int("checkpoint-every", 0, "sweep-checkpoint cadence with -data (0 = every sweep, negative = no checkpoints)")
	noTuned := fs.Bool("no-tuned", false, "disable tuned-schedule auto-selection (jobs always run their spec's ordering verbatim)")
	nodeID := fs.String("node-id", "", "this node's cluster ID (required with -cluster; must appear in the -cluster list)")
	clusterSpec := fs.String("cluster", "", "static cluster membership as id=url,id=url,... (self included); enables sharded routing, work stealing and, with -data, journal-shipping replication")
	replicas := fs.Int("replicas", 0, "ring successors receiving this node's journal in cluster mode (0 = 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var peers []cluster.Peer
	if *clusterSpec != "" {
		if *nodeID == "" {
			return errors.New("jacobitool serve: -cluster requires -node-id")
		}
		var err error
		if peers, err = cluster.ParsePeers(*clusterSpec); err != nil {
			return err
		}
	} else if *nodeID != "" {
		return errors.New("jacobitool serve: -node-id requires -cluster")
	}
	var st *store.Store
	if *dataDir != "" {
		var err error
		if st, err = store.Open(*dataDir); err != nil {
			return err
		}
		defer st.Close()
		fmt.Printf("jacobitool serve: durable store at %s\n", *dataDir)
	}
	svc := service.New(service.Config{
		Workers:            *workers,
		QueueCap:           *queueCap,
		MulticoreThreshold: *threshold,
		CacheCap:           *cacheCap,
		CacheMaxBytes:      *cacheMax,
		LaneWidth:          *laneW,
		LaneWindow:         *laneWin,
		RetainJobs:         *retain,
		TenantQueueQuota:   *quota,
		TenantRate:         *tenantRate,
		TenantBurst:        *tenantBurst,
		ShedHighWater:      *shedHW,
		Store:              st,
		CheckpointEvery:    *ckptEvery,
		DisableTuned:       *noTuned,
		NodeID:             *nodeID,
	})
	defer svc.Close()

	handler := http.Handler(httpapi.NewHandler(svc))
	if len(peers) > 0 {
		node, err := cluster.New(cluster.Config{
			Self:     *nodeID,
			Peers:    peers,
			Service:  svc,
			Store:    st,
			Replicas: *replicas,
		})
		if err != nil {
			return err
		}
		// Close the node before the service: in-flight shipments and
		// stolen solves settle while the service still accepts them.
		defer node.Close()
		handler = node.Handler(handler)
		fmt.Printf("jacobitool serve: cluster node %s among %d peers\n", *nodeID, len(peers))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	fmt.Printf("jacobitool serve: batch-solve service on %s (%d workers)\n", ln.Addr(), svc.Workers())
	fmt.Println("  POST   /api/v2/jobs             submit {random:{n,seed}|matrix:{n,data}, dim, ordering, backend, idempotency_key, ...}")
	fmt.Println("  POST   /api/v2/batch            submit {jobs:[...]} in one request")
	fmt.Println("  GET    /api/v2/jobs             list job statuses (?cursor=&limit=)")
	fmt.Println("  GET    /api/v2/jobs/{id}        job status")
	fmt.Println("  DELETE /api/v2/jobs/{id}        cancel a job")
	fmt.Println("  GET    /api/v2/jobs/{id}/result finished job's result")
	fmt.Println("  GET    /api/v2/jobs/{id}/events progress stream (NDJSON; SSE via Accept)")
	fmt.Println("  GET    /api/v2/metrics          service metrics")
	fmt.Println("  GET    /metrics                 the same metrics, Prometheus text format")
	fmt.Println("  /api/v1/*                       v1 compatibility shim; GET /healthz liveness")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop() // a second signal kills immediately
		fmt.Println("jacobitool serve: signal received, draining…")
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(shCtx)
		cancel()
		if errors.Is(err, context.DeadlineExceeded) {
			// Streams of still-running jobs outlasted the deadline. A
			// watcher must never lose its terminal event to a drain: end
			// the jobs first — every open stream then receives a canceled
			// terminal event carrying the typed shutdown cause
			// (service.ErrShutdown) and its handler returns — and only
			// then close the listener. With -data those jobs are NOT
			// recorded as canceled: they resume on the next boot.
			fmt.Println("jacobitool serve: drain deadline reached, delivering shutdown events to live streams")
			svc.Close()
			flushCtx, cancelFlush := context.WithTimeout(context.Background(), 5*time.Second)
			err = srv.Shutdown(flushCtx)
			cancelFlush()
			if err != nil {
				// A consumer refusing to read its flushed stream is the
				// only way here; cut the connections.
				srv.Close()
				err = nil
			}
		}
		<-errCh // Serve has returned http.ErrServerClosed
		return err
	}
}
