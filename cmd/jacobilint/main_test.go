package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintSelf builds jacobilint and runs it over the whole module. The
// tree must be lint-clean: every intentional exception carries a
// //lint:allow directive, and those directives are reported on stderr so
// reviewers see what is being waived.
func TestLintSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs go vet over the full module")
	}
	bin := filepath.Join(t.TempDir(), "jacobilint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "./...")
	cmd.Dir = filepath.Join("..", "..") // module root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("jacobilint ./... failed (module is not lint-clean): %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "allow in force") {
		t.Errorf("expected the allow-directive report on stderr, got:\n%s", out)
	}
}

// TestVersionFlag pins the unitchecker handshake: go vet probes its
// -vettool with -V=full and expects a single version line and exit 0.
func TestVersionFlag(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "jacobilint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("jacobilint -V=full: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "version") {
		t.Errorf("-V=full output does not look like a version line: %q", out)
	}
}
