// Command jacobilint mechanically enforces the repo's cross-cutting
// invariants (DESIGN.md §15) with a suite of go/analysis passes:
//
//	guardedfield   — 'guarded by <mu>' fields only touched under the mutex
//	errwrapcheck   — Err* sentinels via errors.Is/As and %w wrapping
//	boundeddecode  — wire-decode make() sizes bounds-checked before allocation
//	noallochot     — //jacobi:noalloc kernel entry points stay allocation-free
//	detiter        — no map-iteration order leaking into schedules/fingerprints
//	lintdirective  — the //lint:allow escape hatch names a real analyzer + reason
//
// It is a vet tool. Two invocation modes:
//
//	go vet -vettool=$(which jacobilint) ./...   # unitchecker protocol
//	jacobilint ./...                            # standalone: re-execs go vet
//
// Findings are suppressed by an inline directive on the flagged line or
// the line above it:
//
//	//lint:allow <analyzer> <reason>
//
// Standalone mode prints a summary of the allow directives in force, so
// suppressed findings stay visible rather than silently vanishing.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/boundeddecode"
	"repro/internal/analysis/detiter"
	"repro/internal/analysis/errwrapcheck"
	"repro/internal/analysis/guardedfield"
	"repro/internal/analysis/lintutil"
	"repro/internal/analysis/noallochot"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		guardedfield.Analyzer,
		errwrapcheck.Analyzer,
		boundeddecode.Analyzer,
		noallochot.Analyzer,
		detiter.Analyzer,
		lintutil.DirectiveAnalyzer,
	}
}

func main() {
	// go vet invokes the tool as `jacobilint <file>.cfg` (plus a -V=full
	// handshake); anything else is a human asking for standalone mode.
	if len(os.Args) >= 2 && (strings.HasSuffix(os.Args[1], ".cfg") || strings.HasPrefix(os.Args[1], "-")) {
		unitchecker.Main(analyzers()...) // does not return
	}
	os.Exit(standalone(os.Args[1:]))
}

// standalone re-executes the binary through go vet, which owns package
// loading, export data and the unitchecker fan-out. Exit codes follow
// jacobitool's convention: 0 clean, 1 findings or runtime failure,
// 2 usage errors.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		fmt.Fprintln(os.Stderr, "usage: jacobilint <packages>   (e.g. jacobilint ./...)")
		return 2
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "jacobilint: cannot locate own binary: %v\n", err)
		return 1
	}
	if self, err = filepath.EvalSymlinks(self); err != nil {
		fmt.Fprintf(os.Stderr, "jacobilint: resolve binary path: %v\n", err)
		return 1
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "jacobilint: exec go vet: %v\n", err)
		return 1
	}
	reportAllows(patterns)
	return 0
}

// reportAllows surfaces the //lint:allow directives in force under the
// linted packages: the escape hatch is honored, not hidden.
func reportAllows(patterns []string) {
	var roots []string
	for _, p := range patterns {
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		if p == "" || p == "." {
			p = "."
		}
		roots = append(roots, p)
	}
	n := 0
	for _, root := range roots {
		filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return nil
			}
			if d.IsDir() {
				base := d.Name()
				if base == "vendor" || base == "testdata" || strings.HasPrefix(base, ".") && path != root {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				// The report surfaces waivers in shipped code; test files
				// may quote directives as string literals.
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return nil
			}
			for i, line := range strings.Split(string(data), "\n") {
				idx := strings.Index(line, "//lint:allow ")
				if idx < 0 || strings.Contains(line[:idx], "//") {
					continue // prose inside a doc comment, not a directive
				}
				fields := strings.Fields(line[idx+len("//lint:allow "):])
				if len(fields) < 2 || !lintutil.KnownAnalyzers[fields[0]] {
					continue // malformed: lintdirective flags it as a finding
				}
				fmt.Fprintf(os.Stderr, "jacobilint: allow in force at %s:%d: %s\n", path, i+1, strings.TrimSpace(line[idx:]))
				n++
			}
			return nil
		})
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "jacobilint: %d allow directive(s) in force\n", n)
	}
}
